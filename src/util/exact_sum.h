#ifndef TOUCH_UTIL_EXACT_SUM_H_
#define TOUCH_UTIL_EXACT_SUM_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace touch {

/// Order-independent exact accumulator for float-valued terms.
///
/// Incremental dataset statistics must equal a from-scratch recomputation
/// bit-for-bit (the dynamic-catalog differential oracle), but floating-point
/// addition is not associative: summing extents in mutation order generally
/// differs in the last ulp from summing them in slot order. ExactSum fixes
/// the representation instead of the order: every finite float is an integer
/// multiple of 2^-149, so the running sum is kept as a 384-bit two's
/// complement fixed-point integer (limb 0 LSB = 2^-192). Integer addition is
/// associative and commutative, and Subtract is the exact inverse of Add, so
/// any add/subtract history that nets out to the same multiset of terms
/// yields the same limbs — and therefore the same ToDouble() image.
///
/// Range: |term| < 2^128 and up to ~2^56 terms fit without wraparound.
/// Terms must be finite; infinities and NaNs are undefined behaviour here.
class ExactSum {
 public:
  static constexpr int kLimbs = 6;
  /// Bits to the right of the binary point: limb 0's LSB is 2^-192, below
  /// the smallest float subnormal (2^-149), so every float is representable.
  static constexpr int kFractionBits = 192;

  void Add(float value) { AddSigned(value, /*negate=*/false); }
  void Subtract(float value) { AddSigned(value, /*negate=*/true); }

  bool IsZero() const {
    for (const uint64_t limb : limbs_) {
      if (limb != 0) return false;
    }
    return true;
  }

  /// Deterministic double image of the accumulated sum: identical limb
  /// states produce identical bit patterns, which is the property the
  /// differential oracle relies on (the conversion itself rounds normally).
  double ToDouble() const {
    std::array<uint64_t, kLimbs> magnitude = limbs_;
    const bool negative = (limbs_[kLimbs - 1] >> 63) != 0;
    if (negative) {
      unsigned __int128 carry = 1;
      for (int i = 0; i < kLimbs; ++i) {
        const unsigned __int128 s =
            static_cast<unsigned __int128>(~limbs_[i]) + carry;
        magnitude[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
      }
    }
    double result = 0;
    for (int i = kLimbs - 1; i >= 0; --i) {
      result = result * 18446744073709551616.0 /* 2^64 */ +
               static_cast<double>(magnitude[i]);
    }
    result = std::ldexp(result, -kFractionBits);
    return negative ? -result : result;
  }

  friend bool operator==(const ExactSum&, const ExactSum&) = default;

 private:
  void AddSigned(float value, bool negate) {
    int exp = 0;
    const double frac = std::frexp(static_cast<double>(value), &exp);
    // frac has at most 24 significant bits (it came from a float), so
    // frac * 2^24 is an exact integer and value = m * 2^(exp - 24).
    int64_t m = static_cast<int64_t>(frac * 16777216.0);
    if (m == 0) return;
    if (negate) m = -m;
    // Smallest float subnormal: exp = -148 -> bit = 20, always >= 0.
    const int bit = exp - 24 + kFractionBits;
    const int limb = bit >> 6;
    const int offset = bit & 63;
    const unsigned __int128 wide = static_cast<unsigned __int128>(
        static_cast<__int128>(m) << offset);
    const uint64_t ext = m < 0 ? ~0ull : 0ull;
    unsigned __int128 carry = 0;
    for (int i = limb; i < kLimbs; ++i) {
      unsigned __int128 sum =
          static_cast<unsigned __int128>(limbs_[i]) + carry;
      if (i == limb) {
        sum += static_cast<uint64_t>(wide);
      } else if (i == limb + 1) {
        sum += static_cast<uint64_t>(wide >> 64);
      } else {
        sum += ext;
      }
      limbs_[i] = static_cast<uint64_t>(sum);
      carry = sum >> 64;
    }
  }

  /// Little-endian two's complement limbs; arithmetic is mod 2^384, with
  /// enough headroom that real workloads never wrap.
  std::array<uint64_t, kLimbs> limbs_{};
};

}  // namespace touch

#endif  // TOUCH_UTIL_EXACT_SUM_H_
