#ifndef TOUCH_UTIL_TIMER_H_
#define TOUCH_UTIL_TIMER_H_

#include <chrono>

namespace touch {

/// Monotonic wall-clock stopwatch used for the per-phase timings reported in
/// JoinStats. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace touch

#endif  // TOUCH_UTIL_TIMER_H_
