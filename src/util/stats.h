#ifndef TOUCH_UTIL_STATS_H_
#define TOUCH_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace touch {

/// Metrics produced by one spatial-join execution.
///
/// `comparisons` is the paper's implementation-independent cost metric: the
/// number of object-object MBR intersection tests performed. Tests between
/// index nodes (R-tree traversal, TOUCH tree descent) are tracked separately
/// in `node_comparisons` and never mixed into `comparisons`.
struct JoinStats {
  /// Object-object MBR intersection tests (the paper's "comparisons").
  uint64_t comparisons = 0;
  /// Index-node-level MBR tests (traversals, assignment descent).
  uint64_t node_comparisons = 0;
  /// Result pairs emitted.
  uint64_t results = 0;
  /// Objects of the probe dataset discarded by filtering (TOUCH / S3).
  uint64_t filtered = 0;
  /// Peak analytic footprint of the algorithm's auxiliary structures, bytes.
  size_t memory_bytes = 0;

  /// Per-phase wall-clock seconds. Phases not applicable to an algorithm
  /// stay zero; total_seconds always covers the whole join (including any
  /// index construction, as in the paper's methodology).
  double build_seconds = 0;
  double assign_seconds = 0;
  double join_seconds = 0;
  double total_seconds = 0;
  /// Wall-clock seconds until the first result pair was emitted; 0 when the
  /// join produced no results. Only meaningful for streaming joins (NBPS),
  /// which report results continuously instead of after a blocking
  /// partitioning pass.
  double first_result_seconds = 0;

  /// Result selectivity |R| / (|A|*|B|) given the input cardinalities.
  double Selectivity(size_t size_a, size_t size_b) const;

  /// Adds the counters (not the timings) of `other` into this.
  void MergeCounters(const JoinStats& other);

  /// Human-readable one-line summary, e.g. for examples and debugging.
  std::string ToString() const;
};

}  // namespace touch

#endif  // TOUCH_UTIL_STATS_H_
