#ifndef TOUCH_UTIL_RNG_H_
#define TOUCH_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace touch {

/// Deterministic, fast pseudo-random number generator (xoshiro256++).
///
/// All data generators in this project draw from Rng so that datasets are
/// reproducible from a single 64-bit seed across platforms and standard
/// library versions (std::mt19937 distributions are not portable).
class Rng {
 public:
  /// Seeds the generator; the seed is expanded with SplitMix64 so that
  /// low-entropy seeds (0, 1, 2, ...) still yield well-mixed states.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t x = seed;
    for (auto& s : state_) s = SplitMix64(&x);
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  /// Standard normal variate (Box-Muller; one value per call, cache unused).
  double Normal() {
    // Avoid log(0) by nudging u1 away from zero.
    double u1 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace touch

#endif  // TOUCH_UTIL_RNG_H_
