#include "util/stats.h"

#include <cstdio>

namespace touch {

double JoinStats::Selectivity(size_t size_a, size_t size_b) const {
  if (size_a == 0 || size_b == 0) return 0.0;
  return static_cast<double>(results) /
         (static_cast<double>(size_a) * static_cast<double>(size_b));
}

void JoinStats::MergeCounters(const JoinStats& other) {
  comparisons += other.comparisons;
  node_comparisons += other.node_comparisons;
  results += other.results;
  filtered += other.filtered;
  if (other.memory_bytes > memory_bytes) memory_bytes = other.memory_bytes;
}

std::string JoinStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "comparisons=%llu results=%llu filtered=%llu memory=%.2fMB "
                "time=%.3fs (build=%.3f assign=%.3f join=%.3f)",
                static_cast<unsigned long long>(comparisons),
                static_cast<unsigned long long>(results),
                static_cast<unsigned long long>(filtered),
                static_cast<double>(memory_bytes) / (1024.0 * 1024.0),
                total_seconds, build_seconds, assign_seconds, join_seconds);
  return std::string(buf);
}

}  // namespace touch
