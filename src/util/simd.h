#ifndef TOUCH_UTIL_SIMD_H_
#define TOUCH_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// Portable SIMD support for the epsilon-overlap kernels: the runtime level
/// taxonomy + cpuid feature detection (always compiled), and the per-ISA
/// intrinsic wrappers (compiled only into the per-ISA kernel translation
/// units, core/overlap_kernel_{scalar,sse2,avx2,neon}.cc).
///
/// The instruction set is selected at RUNTIME, not build time: every binary
/// carries kernels for each ISA its architecture can express (scalar + SSE2
/// + AVX2 on x86-64, scalar + NEON on aarch64), each compiled in its own
/// translation unit with per-TU flags (CMake adds -mavx2 to the AVX2 TU
/// only). At first kernel use, core/overlap_kernel.cc's dispatcher probes
/// the CPU (DetectCpuFeatures below) and installs the widest supported
/// kernel table; the `TOUCH_SIMD_LEVEL` environment variable and the CLI's
/// `--simd=` flag force a narrower level (impossible requests fail loudly —
/// never a silent fallback). The resolved level is queryable at runtime via
/// SimdLevelName()/SimdWidth() in core/overlap_kernel.h.
///
/// A per-ISA kernel TU defines TOUCH_SIMD_TU_LEVEL (a Level value, below)
/// before including this header to get that ISA's wrapper ops; every other
/// includer sees only the level/detection API and AlignedArena.
///
/// Comparison semantics: every CmpLE below implements IEEE-754 ordered
/// quiet less-or-equal — false when either operand is NaN — exactly like
/// the scalar `<=` in Intersects(). This is what makes every SIMD level and
/// the scalar path produce bit-identical pair sets (the differential
/// harness in tests/overlap_kernel_test.cc holds all runtime-available
/// levels to sequence equality within one process).

#if defined(TOUCH_SIMD_TU_LEVEL) && TOUCH_SIMD_TU_LEVEL == 3
#include <immintrin.h>
#elif defined(TOUCH_SIMD_TU_LEVEL) && TOUCH_SIMD_TU_LEVEL == 2
#include <emmintrin.h>
#elif defined(TOUCH_SIMD_TU_LEVEL) && TOUCH_SIMD_TU_LEVEL == 1
#include <arm_neon.h>
#endif

namespace touch {
namespace simd {

/// Kernel instruction-set levels, ordered so a larger value is never a
/// narrower ISA. kScalar is always available; the rest require both the
/// matching per-ISA TU (architecture-dependent, see LevelCompiledIn) and
/// CPU support detected at runtime (LevelSupported).
enum class Level : int {
  kScalar = 0,  // reference loops, 1 float lane
  kNeon = 1,    // aarch64/ARM NEON, 4 float lanes
  kSse2 = 2,    // x86-64 baseline, 4 float lanes
  kAvx2 = 3,    // x86 AVX2, 8 float lanes
};

/// Stable lowercase name ("scalar", "neon", "sse2", "avx2") — also the
/// accepted spelling for TOUCH_SIMD_LEVEL / --simd= / ParseLevelName.
const char* LevelName(Level level);

/// Float lanes per batch at this level (1 for scalar).
int LevelWidth(Level level);

/// Parses a LevelName spelling; nullopt on anything else ("auto" included —
/// callers treat auto as "don't force").
std::optional<Level> ParseLevelName(std::string_view name);

/// True when this binary contains a kernel TU for the level (decided by the
/// target architecture: x86 builds carry scalar/sse2/avx2, ARM builds carry
/// scalar/neon). Independent of what the host CPU supports.
bool LevelCompiledIn(Level level);

/// CPU capability bits relevant to kernel dispatch, read once via cpuid
/// (x86) or implied by the architecture (aarch64 NEON).
struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;      // CPUID AVX + OS xsave of the ymm state
  bool avx2 = false;     // requires avx (OS support) as well
  bool neon = false;
  /// Space-separated detected feature list for reports ("sse2 avx avx2",
  /// "neon", or "none").
  std::string ToString() const;
};
CpuFeatures DetectCpuFeatures();

/// True when the level is both compiled into this binary and supported by
/// the host CPU — i.e. ForceSimdLevel(level) would succeed.
bool LevelSupported(Level level);

/// The widest supported level (what auto-dispatch resolves to).
Level DetectBestLevel();

/// Every level ForceSimdLevel can select on this host, ascending (always
/// starts with kScalar). The cross-level differential tests and the forced
/// -level microbenches iterate exactly this set.
std::vector<Level> RuntimeAvailableLevels();

// --- Per-ISA intrinsic wrappers (kernel TUs only) ----------------------------
//
// kWidth/FloatVec/LoadUnaligned/Broadcast/CmpLE/CmpGT/MaskAnd/MoveMask for
// the TU's level. TOUCH_SIMD_TU_LEVEL is set per translation unit by the
// per-ISA kernel .cc files; the block is absent (not scalar-stubbed) for
// all other includers so nothing outside the kernel layer can accidentally
// depend on one ISA.

#if defined(TOUCH_SIMD_TU_LEVEL) && TOUCH_SIMD_TU_LEVEL == 3

inline constexpr int kWidth = 8;
using FloatVec = __m256;
using MaskVec = __m256;
inline FloatVec LoadUnaligned(const float* p) { return _mm256_loadu_ps(p); }
inline FloatVec Broadcast(float v) { return _mm256_set1_ps(v); }
inline MaskVec CmpLE(FloatVec a, FloatVec b) {
  return _mm256_cmp_ps(a, b, _CMP_LE_OQ);
}
inline MaskVec CmpGT(FloatVec a, FloatVec b) {
  return _mm256_cmp_ps(a, b, _CMP_GT_OQ);
}
inline MaskVec MaskAnd(MaskVec a, MaskVec b) { return _mm256_and_ps(a, b); }
inline uint32_t MoveMask(MaskVec m) {
  return static_cast<uint32_t>(_mm256_movemask_ps(m));
}

#elif defined(TOUCH_SIMD_TU_LEVEL) && TOUCH_SIMD_TU_LEVEL == 2

inline constexpr int kWidth = 4;
using FloatVec = __m128;
using MaskVec = __m128;
inline FloatVec LoadUnaligned(const float* p) { return _mm_loadu_ps(p); }
inline FloatVec Broadcast(float v) { return _mm_set1_ps(v); }
inline MaskVec CmpLE(FloatVec a, FloatVec b) { return _mm_cmple_ps(a, b); }
inline MaskVec CmpGT(FloatVec a, FloatVec b) { return _mm_cmpgt_ps(a, b); }
inline MaskVec MaskAnd(MaskVec a, MaskVec b) { return _mm_and_ps(a, b); }
inline uint32_t MoveMask(MaskVec m) {
  return static_cast<uint32_t>(_mm_movemask_ps(m));
}

#elif defined(TOUCH_SIMD_TU_LEVEL) && TOUCH_SIMD_TU_LEVEL == 1

inline constexpr int kWidth = 4;
using FloatVec = float32x4_t;
using MaskVec = uint32x4_t;
inline FloatVec LoadUnaligned(const float* p) { return vld1q_f32(p); }
inline FloatVec Broadcast(float v) { return vdupq_n_f32(v); }
inline MaskVec CmpLE(FloatVec a, FloatVec b) { return vcleq_f32(a, b); }
inline MaskVec CmpGT(FloatVec a, FloatVec b) { return vcgtq_f32(a, b); }
inline MaskVec MaskAnd(MaskVec a, MaskVec b) { return vandq_u32(a, b); }
inline uint32_t MoveMask(MaskVec m) {
  // Each lane is all-ones or all-zero; collapse lane i into bit i.
  const uint32x4_t bits = {1u, 2u, 4u, 8u};
  const uint32x4_t masked = vandq_u32(m, bits);
#if defined(__aarch64__)
  return vaddvq_u32(masked);
#else
  const uint32x2_t sum =
      vadd_u32(vget_low_u32(masked), vget_high_u32(masked));
  return vget_lane_u32(vpadd_u32(sum, sum), 0);
#endif
}

#endif  // TOUCH_SIMD_TU_LEVEL

/// 64-byte-aligned float arena backing the SoA slabs. One allocation holds
/// all six coordinate arrays of a slab; capacity is retained across
/// Reserve() calls so reusing a slab (per tree node, per PBSM cell) costs
/// no allocation once warmed up. Growth is deterministic in the sequence of
/// requested sizes — analytic memory accounting that includes an arena must
/// therefore be reproducible run to run (the prebuilt-tree footprint
/// equality tests rely on this).
class AlignedArena {
 public:
  static constexpr size_t kAlignment = 64;

  /// Returns a 64-byte-aligned block of at least `count` floats, reusing
  /// the existing allocation when it is big enough.
  float* Reserve(size_t count) {
    if (count > capacity_) {
      // Grow by at least 1.5x, rounded up to a whole cache line of floats,
      // so repeated slightly-larger requests don't reallocate every time.
      size_t grown = capacity_ + capacity_ / 2;
      if (grown < count) grown = count;
      grown = (grown + 15) & ~size_t{15};
      data_.reset(static_cast<float*>(
          ::operator new[](grown * sizeof(float), std::align_val_t{kAlignment})));
      capacity_ = grown;
    }
    return data_.get();
  }

  /// Floats currently allocated (0 before the first Reserve).
  size_t capacity() const { return capacity_; }
  size_t MemoryUsageBytes() const { return capacity_ * sizeof(float); }

 private:
  struct AlignedDelete {
    void operator()(float* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  std::unique_ptr<float, AlignedDelete> data_;
  size_t capacity_ = 0;
};

}  // namespace simd
}  // namespace touch

#endif  // TOUCH_UTIL_SIMD_H_
