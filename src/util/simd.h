#ifndef TOUCH_UTIL_SIMD_H_
#define TOUCH_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

/// Portable SIMD wrapper for the epsilon-overlap kernels
/// (core/overlap_kernel.cc is the only intended user).
///
/// The instruction set is selected at BUILD time from the compiler's target
/// macros, gated by the TOUCH_SIMD CMake option (which defines
/// TOUCH_SIMD_ENABLED). Precedence: AVX2 (8 lanes) > SSE2 (4) > NEON (4) >
/// scalar fallback. There is no runtime dispatch: a binary compiled with
/// -mavx2 uses AVX2 everywhere, a default x86-64 build uses SSE2, an
/// aarch64 build uses NEON, and TOUCH_SIMD=OFF (or an unknown target) runs
/// the scalar reference path. The active level is queryable at runtime via
/// SimdLevelName()/SimdWidth() in core/overlap_kernel.h so the CLI's
/// --explain report and the benches can record which kernel actually ran.
///
/// Comparison semantics: every CmpLE below implements IEEE-754 ordered
/// quiet less-or-equal — false when either operand is NaN — exactly like
/// the scalar `<=` in Intersects(). This is what makes the SIMD and scalar
/// paths produce bit-identical pair sets (the differential harness in
/// tests/overlap_kernel_test.cc holds the two paths to set equality).

#if defined(TOUCH_SIMD_ENABLED)
#if defined(__AVX2__)
#define TOUCH_SIMD_LEVEL 3  // AVX2, 8 float lanes
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define TOUCH_SIMD_LEVEL 2  // SSE2, 4 float lanes
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__) || defined(__aarch64__)
#define TOUCH_SIMD_LEVEL 1  // NEON, 4 float lanes
#include <arm_neon.h>
#else
#define TOUCH_SIMD_LEVEL 0  // unknown target: scalar fallback
#endif
#else
#define TOUCH_SIMD_LEVEL 0  // TOUCH_SIMD=OFF: scalar reference path
#endif

namespace touch {
namespace simd {

#if TOUCH_SIMD_LEVEL == 3

inline constexpr int kWidth = 8;
inline constexpr const char* kLevelName = "avx2";
using FloatVec = __m256;
using MaskVec = __m256;
inline FloatVec LoadUnaligned(const float* p) { return _mm256_loadu_ps(p); }
inline FloatVec Broadcast(float v) { return _mm256_set1_ps(v); }
inline MaskVec CmpLE(FloatVec a, FloatVec b) {
  return _mm256_cmp_ps(a, b, _CMP_LE_OQ);
}
inline MaskVec CmpGT(FloatVec a, FloatVec b) {
  return _mm256_cmp_ps(a, b, _CMP_GT_OQ);
}
inline MaskVec MaskAnd(MaskVec a, MaskVec b) { return _mm256_and_ps(a, b); }
inline uint32_t MoveMask(MaskVec m) {
  return static_cast<uint32_t>(_mm256_movemask_ps(m));
}

#elif TOUCH_SIMD_LEVEL == 2

inline constexpr int kWidth = 4;
inline constexpr const char* kLevelName = "sse2";
using FloatVec = __m128;
using MaskVec = __m128;
inline FloatVec LoadUnaligned(const float* p) { return _mm_loadu_ps(p); }
inline FloatVec Broadcast(float v) { return _mm_set1_ps(v); }
inline MaskVec CmpLE(FloatVec a, FloatVec b) { return _mm_cmple_ps(a, b); }
inline MaskVec CmpGT(FloatVec a, FloatVec b) { return _mm_cmpgt_ps(a, b); }
inline MaskVec MaskAnd(MaskVec a, MaskVec b) { return _mm_and_ps(a, b); }
inline uint32_t MoveMask(MaskVec m) {
  return static_cast<uint32_t>(_mm_movemask_ps(m));
}

#elif TOUCH_SIMD_LEVEL == 1

inline constexpr int kWidth = 4;
inline constexpr const char* kLevelName = "neon";
using FloatVec = float32x4_t;
using MaskVec = uint32x4_t;
inline FloatVec LoadUnaligned(const float* p) { return vld1q_f32(p); }
inline FloatVec Broadcast(float v) { return vdupq_n_f32(v); }
inline MaskVec CmpLE(FloatVec a, FloatVec b) { return vcleq_f32(a, b); }
inline MaskVec CmpGT(FloatVec a, FloatVec b) { return vcgtq_f32(a, b); }
inline MaskVec MaskAnd(MaskVec a, MaskVec b) { return vandq_u32(a, b); }
inline uint32_t MoveMask(MaskVec m) {
  // Each lane is all-ones or all-zero; collapse lane i into bit i.
  const uint32x4_t bits = {1u, 2u, 4u, 8u};
  const uint32x4_t masked = vandq_u32(m, bits);
#if defined(__aarch64__)
  return vaddvq_u32(masked);
#else
  const uint32x2_t sum =
      vadd_u32(vget_low_u32(masked), vget_high_u32(masked));
  return vget_lane_u32(vpadd_u32(sum, sum), 0);
#endif
}

#else

inline constexpr int kWidth = 1;
inline constexpr const char* kLevelName = "scalar";

#endif  // TOUCH_SIMD_LEVEL

/// 64-byte-aligned float arena backing the SoA slabs. One allocation holds
/// all six coordinate arrays of a slab; capacity is retained across
/// Reserve() calls so reusing a slab (per tree node, per PBSM cell) costs
/// no allocation once warmed up. Growth is deterministic in the sequence of
/// requested sizes — analytic memory accounting that includes an arena must
/// therefore be reproducible run to run (the prebuilt-tree footprint
/// equality tests rely on this).
class AlignedArena {
 public:
  static constexpr size_t kAlignment = 64;

  /// Returns a 64-byte-aligned block of at least `count` floats, reusing
  /// the existing allocation when it is big enough.
  float* Reserve(size_t count) {
    if (count > capacity_) {
      // Grow by at least 1.5x, rounded up to a whole cache line of floats,
      // so repeated slightly-larger requests don't reallocate every time.
      size_t grown = capacity_ + capacity_ / 2;
      if (grown < count) grown = count;
      grown = (grown + 15) & ~size_t{15};
      data_.reset(static_cast<float*>(
          ::operator new[](grown * sizeof(float), std::align_val_t{kAlignment})));
      capacity_ = grown;
    }
    return data_.get();
  }

  /// Floats currently allocated (0 before the first Reserve).
  size_t capacity() const { return capacity_; }
  size_t MemoryUsageBytes() const { return capacity_ * sizeof(float); }

 private:
  struct AlignedDelete {
    void operator()(float* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  std::unique_ptr<float, AlignedDelete> data_;
  size_t capacity_ = 0;
};

}  // namespace simd
}  // namespace touch

#endif  // TOUCH_UTIL_SIMD_H_
