#include "io/dataset_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace touch {
namespace {

constexpr char kBoxMagic[4] = {'T', 'S', 'J', 'B'};
constexpr char kNeuroMagic[4] = {'T', 'S', 'J', 'C'};
constexpr uint32_t kFormatVersion = 1;

/// RAII wrapper over std::FILE.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File OpenFile(const std::string& path, const char* mode) {
  return File(std::fopen(path.c_str(), mode));
}

IoStatus OpenError(const std::string& path, const char* action) {
  return IoStatus::Error(std::string("cannot open '") + path + "' for " +
                         action);
}

bool WriteRaw(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

bool ReadRaw(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

IoStatus WriteHeader(std::FILE* f, const char magic[4],
                     const std::string& path) {
  uint32_t version = kFormatVersion;
  if (!WriteRaw(f, magic, 4) || !WriteRaw(f, &version, sizeof(version))) {
    return IoStatus::Error("write failed on '" + path + "'");
  }
  return IoStatus::Ok();
}

IoStatus CheckHeader(std::FILE* f, const char magic[4],
                     const std::string& path) {
  char got[4];
  uint32_t version = 0;
  if (!ReadRaw(f, got, 4) || !ReadRaw(f, &version, sizeof(version))) {
    return IoStatus::Error("'" + path + "' is truncated (no header)");
  }
  if (std::memcmp(got, magic, 4) != 0) {
    return IoStatus::Error("'" + path + "' has the wrong magic (not a " +
                           std::string(magic, 4) + " file)");
  }
  if (version != kFormatVersion) {
    return IoStatus::Error("'" + path + "' has unsupported format version " +
                           std::to_string(version));
  }
  return IoStatus::Ok();
}

}  // namespace

IoStatus WriteBoxesBinary(const std::string& path,
                          const std::vector<Box>& boxes) {
  File f = OpenFile(path, "wb");
  if (!f) return OpenError(path, "writing");
  if (IoStatus s = WriteHeader(f.get(), kBoxMagic, path); !s) return s;
  const uint64_t count = boxes.size();
  if (!WriteRaw(f.get(), &count, sizeof(count)) ||
      !WriteRaw(f.get(), boxes.data(), boxes.size() * sizeof(Box))) {
    return IoStatus::Error("write failed on '" + path + "'");
  }
  return IoStatus::Ok();
}

IoStatus ReadBoxesBinary(const std::string& path, std::vector<Box>* boxes) {
  File f = OpenFile(path, "rb");
  if (!f) return OpenError(path, "reading");
  if (IoStatus s = CheckHeader(f.get(), kBoxMagic, path); !s) return s;
  uint64_t count = 0;
  if (!ReadRaw(f.get(), &count, sizeof(count))) {
    return IoStatus::Error("'" + path + "' is truncated (no count)");
  }
  boxes->assign(count, Box());
  if (!ReadRaw(f.get(), boxes->data(), count * sizeof(Box))) {
    boxes->clear();
    return IoStatus::Error("'" + path + "' is truncated (payload shorter " +
                           "than its declared " + std::to_string(count) +
                           " boxes)");
  }
  return IoStatus::Ok();
}

IoStatus WriteBoxesCsv(const std::string& path,
                       const std::vector<Box>& boxes) {
  File f = OpenFile(path, "w");
  if (!f) return OpenError(path, "writing");
  if (std::fputs("lo_x,lo_y,lo_z,hi_x,hi_y,hi_z\n", f.get()) < 0) {
    return IoStatus::Error("write failed on '" + path + "'");
  }
  for (const Box& b : boxes) {
    if (std::fprintf(f.get(), "%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n", b.lo.x,
                     b.lo.y, b.lo.z, b.hi.x, b.hi.y, b.hi.z) < 0) {
      return IoStatus::Error("write failed on '" + path + "'");
    }
  }
  return IoStatus::Ok();
}

IoStatus ReadBoxesCsv(const std::string& path, std::vector<Box>* boxes) {
  File f = OpenFile(path, "r");
  if (!f) return OpenError(path, "reading");
  boxes->clear();
  char line[512];
  int line_number = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_number;
    // Skip the header and blank lines.
    if (line_number == 1 && std::strncmp(line, "lo_x", 4) == 0) continue;
    if (line[0] == '\n' || line[0] == '\0') continue;
    Box b;
    const int fields =
        std::sscanf(line, "%f,%f,%f,%f,%f,%f", &b.lo.x, &b.lo.y, &b.lo.z,
                    &b.hi.x, &b.hi.y, &b.hi.z);
    if (fields != 6) {
      boxes->clear();
      return IoStatus::Error("'" + path + "' line " +
                             std::to_string(line_number) +
                             ": expected 6 comma-separated floats");
    }
    boxes->push_back(b);
  }
  return IoStatus::Ok();
}

IoStatus WriteNeuroModelBinary(const std::string& path,
                               const NeuroModel& model) {
  File f = OpenFile(path, "wb");
  if (!f) return OpenError(path, "writing");
  if (IoStatus s = WriteHeader(f.get(), kNeuroMagic, path); !s) return s;
  const uint64_t axons = model.axons.size();
  const uint64_t dendrites = model.dendrites.size();
  if (!WriteRaw(f.get(), &axons, sizeof(axons)) ||
      !WriteRaw(f.get(), &dendrites, sizeof(dendrites)) ||
      !WriteRaw(f.get(), model.axons.data(), axons * sizeof(Cylinder)) ||
      !WriteRaw(f.get(), model.dendrites.data(),
                dendrites * sizeof(Cylinder))) {
    return IoStatus::Error("write failed on '" + path + "'");
  }
  return IoStatus::Ok();
}

IoStatus ReadNeuroModelBinary(const std::string& path, NeuroModel* model) {
  File f = OpenFile(path, "rb");
  if (!f) return OpenError(path, "reading");
  if (IoStatus s = CheckHeader(f.get(), kNeuroMagic, path); !s) return s;
  uint64_t axons = 0;
  uint64_t dendrites = 0;
  if (!ReadRaw(f.get(), &axons, sizeof(axons)) ||
      !ReadRaw(f.get(), &dendrites, sizeof(dendrites))) {
    return IoStatus::Error("'" + path + "' is truncated (no counts)");
  }
  model->axons.assign(axons, Cylinder());
  model->dendrites.assign(dendrites, Cylinder());
  if (!ReadRaw(f.get(), model->axons.data(), axons * sizeof(Cylinder)) ||
      !ReadRaw(f.get(), model->dendrites.data(),
               dendrites * sizeof(Cylinder))) {
    model->axons.clear();
    model->dendrites.clear();
    return IoStatus::Error("'" + path + "' is truncated (payload)");
  }
  return IoStatus::Ok();
}

}  // namespace touch
