#ifndef TOUCH_IO_DATASET_IO_H_
#define TOUCH_IO_DATASET_IO_H_

#include <string>
#include <vector>

#include "datagen/dataset.h"
#include "datagen/neuro.h"
#include "geom/box.h"

namespace touch {

/// Outcome of an I/O operation. Exceptions are not used in this codebase;
/// failures carry a human-readable message with the offending file/line.
struct IoStatus {
  bool ok = true;
  std::string message;

  static IoStatus Ok() { return IoStatus{}; }
  static IoStatus Error(std::string msg) {
    return IoStatus{false, std::move(msg)};
  }
  explicit operator bool() const { return ok; }
};

/// Binary dataset format (little-endian): magic "TSJB", u32 version, u64
/// count, then `count` boxes of 6 floats (lo.xyz, hi.xyz). Compact and
/// loads at memcpy speed — the paper's loading experiment (section 6.3)
/// shows load time is dwarfed by join time, and this format keeps it so.
IoStatus WriteBoxesBinary(const std::string& path,
                          const std::vector<Box>& boxes);
IoStatus ReadBoxesBinary(const std::string& path, std::vector<Box>* boxes);

/// CSV with header `lo_x,lo_y,lo_z,hi_x,hi_y,hi_z`, one box per line.
/// Interoperable with spreadsheet/pandas tooling; slower than binary.
IoStatus WriteBoxesCsv(const std::string& path, const std::vector<Box>& boxes);
IoStatus ReadBoxesCsv(const std::string& path, std::vector<Box>* boxes);

/// Binary neuroscience model (magic "TSJC"): u32 version, u64 axon count,
/// u64 dendrite count, then cylinders of 7 floats (start.xyz, end.xyz,
/// radius), axons first.
IoStatus WriteNeuroModelBinary(const std::string& path,
                               const NeuroModel& model);
IoStatus ReadNeuroModelBinary(const std::string& path, NeuroModel* model);

}  // namespace touch

#endif  // TOUCH_IO_DATASET_IO_H_
