#include "geom/sphere.h"

#include <algorithm>
#include <cmath>

namespace touch {

double PointSegmentDistance(const Vec3& p, const Vec3& s0, const Vec3& s1) {
  const Vec3 d = s1 - s0;
  const float len_sq = d.LengthSquared();
  if (len_sq <= 0.0f) return static_cast<double>((p - s0).Length());
  const float t = std::clamp((p - s0).Dot(d) / len_sq, 0.0f, 1.0f);
  return static_cast<double>((p - (s0 + d * t)).Length());
}

double SphereDistance(const Sphere& a, const Sphere& b) {
  const double centers = static_cast<double>((a.center - b.center).Length());
  return std::max(0.0, centers - a.radius - b.radius);
}

double SphereCylinderDistance(const Sphere& sphere, const Cylinder& cylinder) {
  const double axis =
      PointSegmentDistance(sphere.center, cylinder.start, cylinder.end);
  return std::max(0.0, axis - sphere.radius - cylinder.radius);
}

bool SpheresWithinDistance(const Sphere& a, const Sphere& b, double epsilon) {
  return SphereDistance(a, b) <= epsilon;
}

bool SphereCylinderWithinDistance(const Sphere& sphere,
                                  const Cylinder& cylinder, double epsilon) {
  return SphereCylinderDistance(sphere, cylinder) <= epsilon;
}

}  // namespace touch
