#ifndef TOUCH_GEOM_VEC3_H_
#define TOUCH_GEOM_VEC3_H_

#include <cmath>

namespace touch {

/// 3D vector / point with float components.
///
/// The paper's workloads live in a 1000-unit cube with distance predicates
/// epsilon in {5, 10}; single precision leaves more than four decimal digits
/// of headroom there and halves the memory traffic of the join, which is the
/// dominant cost.
struct Vec3 {
  float x = 0;
  float y = 0;
  float z = 0;

  constexpr Vec3() = default;
  constexpr Vec3(float vx, float vy, float vz) : x(vx), y(vy), z(vz) {}

  constexpr float operator[](int axis) const {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }

  /// Mutable component access by axis index (0=x, 1=y, 2=z).
  float& At(int axis) { return axis == 0 ? x : (axis == 1 ? y : z); }

  constexpr Vec3 operator+(const Vec3& o) const {
    return Vec3(x + o.x, y + o.y, z + o.z);
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return Vec3(x - o.x, y - o.y, z - o.z);
  }
  constexpr Vec3 operator*(float s) const { return Vec3(x * s, y * s, z * s); }

  constexpr float Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr float LengthSquared() const { return Dot(*this); }
  float Length() const { return std::sqrt(LengthSquared()); }

  /// Returns this vector scaled to unit length; the zero vector is returned
  /// unchanged.
  Vec3 Normalized() const {
    const float len = Length();
    if (len == 0) return *this;
    return *this * (1.0f / len);
  }
};

constexpr bool operator==(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

}  // namespace touch

#endif  // TOUCH_GEOM_VEC3_H_
