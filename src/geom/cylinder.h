#ifndef TOUCH_GEOM_CYLINDER_H_
#define TOUCH_GEOM_CYLINDER_H_

#include "geom/box.h"
#include "geom/vec3.h"

namespace touch {

/// Capped cylinder (a line segment with a radius), the primitive the
/// neuroscience models of the paper are built from: each neuron branch is a
/// chain of such cylinders for axons and dendrites.
///
/// The spatial-join filtering phase only sees the cylinder's MBR; this type
/// additionally supports the exact refinement test (segment-segment distance
/// against the sum of radii), which the paper delegates to "any off-the-shelf
/// solution" and we provide for completeness.
struct Cylinder {
  Vec3 start;
  Vec3 end;
  float radius = 0;

  constexpr Cylinder() = default;
  constexpr Cylinder(const Vec3& s, const Vec3& e, float r)
      : start(s), end(e), radius(r) {}

  /// Minimum bounding box of the cylinder (segment box padded by radius).
  Box Mbr() const;

  /// Axis length of the cylinder (segment length).
  float Length() const { return (end - start).Length(); }
};

/// Minimum distance between two 3D line segments [p0,p1] and [q0,q1].
double SegmentDistance(const Vec3& p0, const Vec3& p1, const Vec3& q0,
                       const Vec3& q1);

/// Distance between two cylinder surfaces (segment distance minus radii;
/// clamped at 0 when the cylinders interpenetrate).
double CylinderDistance(const Cylinder& a, const Cylinder& b);

/// Exact refinement predicate of the paper's distance join: true when the
/// cylinders are within `epsilon` of each other.
bool CylindersWithinDistance(const Cylinder& a, const Cylinder& b,
                             double epsilon);

}  // namespace touch

#endif  // TOUCH_GEOM_CYLINDER_H_
