#include "geom/grid.h"

#include <algorithm>
#include <cmath>

namespace touch {

GridMapper::GridMapper(const Box& domain, int res_x, int res_y, int res_z)
    : domain_(domain) {
  res_[0] = std::max(1, res_x);
  res_[1] = std::max(1, res_y);
  res_[2] = std::max(1, res_z);
  const Vec3 extent = domain.Extent();
  const float ext[3] = {extent.x, extent.y, extent.z};
  for (int axis = 0; axis < 3; ++axis) {
    // Degenerate domains (flat along an axis) still get one valid cell.
    cell_w_[axis] = ext[axis] > 0 ? ext[axis] / static_cast<float>(res_[axis]) : 1.0f;
    inv_w_[axis] = 1.0f / cell_w_[axis];
  }
}

CellCoord GridMapper::CellOf(const Vec3& p) const {
  CellCoord c;
  const float rel[3] = {p.x - domain_.lo.x, p.y - domain_.lo.y,
                        p.z - domain_.lo.z};
  int* out[3] = {&c.x, &c.y, &c.z};
  for (int axis = 0; axis < 3; ++axis) {
    const int idx = static_cast<int>(std::floor(rel[axis] * inv_w_[axis]));
    *out[axis] = std::clamp(idx, 0, res_[axis] - 1);
  }
  return c;
}

CellRange GridMapper::RangeOf(const Box& box) const {
  return CellRange{CellOf(box.lo), CellOf(box.hi)};
}

Box GridMapper::CellBounds(const CellCoord& c) const {
  const Vec3 lo(domain_.lo.x + static_cast<float>(c.x) * cell_w_[0],
                domain_.lo.y + static_cast<float>(c.y) * cell_w_[1],
                domain_.lo.z + static_cast<float>(c.z) * cell_w_[2]);
  return Box(lo, Vec3(lo.x + cell_w_[0], lo.y + cell_w_[1], lo.z + cell_w_[2]));
}

}  // namespace touch
