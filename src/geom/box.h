#ifndef TOUCH_GEOM_BOX_H_
#define TOUCH_GEOM_BOX_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geom/vec3.h"

namespace touch {

/// Axis-aligned 3D box (minimum bounding rectangle in the paper's terms).
///
/// Boxes are closed: two boxes sharing only a face, edge, or corner are
/// considered intersecting, matching the paper's "overlap as both
/// intersection and containment".
struct Box {
  Vec3 lo;
  Vec3 hi;

  constexpr Box() = default;
  constexpr Box(const Vec3& min_corner, const Vec3& max_corner)
      : lo(min_corner), hi(max_corner) {}

  /// A box that contains nothing and is the identity for ExpandToContain.
  static Box Empty() {
    constexpr float kInf = std::numeric_limits<float>::infinity();
    return Box(Vec3(kInf, kInf, kInf), Vec3(-kInf, -kInf, -kInf));
  }

  /// True when the box contains no point (any lo component > hi component).
  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }

  Vec3 Center() const { return (lo + hi) * 0.5f; }
  Vec3 Extent() const { return hi - lo; }

  /// Volume; zero-extent axes contribute zero.
  double Volume() const {
    if (IsEmpty()) return 0.0;
    const Vec3 e = Extent();
    return static_cast<double>(e.x) * e.y * e.z;
  }

  /// Surface-style measure used for dead-space diagnostics: sum of extents.
  double Margin() const {
    if (IsEmpty()) return 0.0;
    const Vec3 e = Extent();
    return static_cast<double>(e.x) + e.y + e.z;
  }

  /// Grows this box to also enclose `other`.
  void ExpandToContain(const Box& other) {
    lo.x = std::min(lo.x, other.lo.x);
    lo.y = std::min(lo.y, other.lo.y);
    lo.z = std::min(lo.z, other.lo.z);
    hi.x = std::max(hi.x, other.hi.x);
    hi.y = std::max(hi.y, other.hi.y);
    hi.z = std::max(hi.z, other.hi.z);
  }

  /// Grows this box to also enclose the point `p`.
  void ExpandToContain(const Vec3& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }

  /// Box enlarged by `epsilon` on every side (Minkowski sum with a cube of
  /// half-width epsilon). This is the paper's distance-join translation: a
  /// distance join with threshold e equals a spatial join after enlarging one
  /// dataset's boxes by e.
  Box Enlarged(float epsilon) const {
    const Vec3 d(epsilon, epsilon, epsilon);
    return Box(lo - d, hi + d);
  }

  std::string ToString() const;
};

/// True when the closed boxes `a` and `b` share at least one point.
inline bool Intersects(const Box& a, const Box& b) {
  return a.lo.x <= b.hi.x && b.lo.x <= a.hi.x &&  //
         a.lo.y <= b.hi.y && b.lo.y <= a.hi.y &&  //
         a.lo.z <= b.hi.z && b.lo.z <= a.hi.z;
}

/// True when `outer` fully contains `inner` (closed containment).
inline bool Contains(const Box& outer, const Box& inner) {
  return outer.lo.x <= inner.lo.x && inner.hi.x <= outer.hi.x &&
         outer.lo.y <= inner.lo.y && inner.hi.y <= outer.hi.y &&
         outer.lo.z <= inner.lo.z && inner.hi.z <= outer.hi.z;
}

/// True when `b` contains the point `p` (closed).
inline bool ContainsPoint(const Box& b, const Vec3& p) {
  return b.lo.x <= p.x && p.x <= b.hi.x &&  //
         b.lo.y <= p.y && p.y <= b.hi.y &&  //
         b.lo.z <= p.z && p.z <= b.hi.z;
}

/// The intersection region of two boxes; empty if they do not intersect.
Box Intersection(const Box& a, const Box& b);

/// Smallest box enclosing both arguments.
Box Union(const Box& a, const Box& b);

/// Minimum L2 distance between two boxes (0 when they intersect).
double MinDistance(const Box& a, const Box& b);

bool operator==(const Box& a, const Box& b);

}  // namespace touch

#endif  // TOUCH_GEOM_BOX_H_
