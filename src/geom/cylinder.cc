#include "geom/cylinder.h"

#include <algorithm>

namespace touch {

Box Cylinder::Mbr() const {
  Box b = Box::Empty();
  b.ExpandToContain(start);
  b.ExpandToContain(end);
  return b.Enlarged(radius);
}

// Closest-point computation between segments, after Ericson, "Real-Time
// Collision Detection", section 5.1.9. Uses double internally: the clamped
// parametric solve is sensitive to cancellation for near-parallel segments.
double SegmentDistance(const Vec3& p0, const Vec3& p1, const Vec3& q0,
                       const Vec3& q1) {
  const double dx1 = p1.x - p0.x, dy1 = p1.y - p0.y, dz1 = p1.z - p0.z;
  const double dx2 = q1.x - q0.x, dy2 = q1.y - q0.y, dz2 = q1.z - q0.z;
  const double rx = p0.x - q0.x, ry = p0.y - q0.y, rz = p0.z - q0.z;

  const double a = dx1 * dx1 + dy1 * dy1 + dz1 * dz1;  // |d1|^2
  const double e = dx2 * dx2 + dy2 * dy2 + dz2 * dz2;  // |d2|^2
  const double f = dx2 * rx + dy2 * ry + dz2 * rz;     // d2 . r

  double s = 0.0;
  double t = 0.0;
  constexpr double kEps = 1e-12;
  if (a <= kEps && e <= kEps) {
    // Both segments degenerate to points.
  } else if (a <= kEps) {
    t = std::clamp(f / e, 0.0, 1.0);
  } else {
    const double c = dx1 * rx + dy1 * ry + dz1 * rz;  // d1 . r
    if (e <= kEps) {
      s = std::clamp(-c / a, 0.0, 1.0);
    } else {
      const double b = dx1 * dx2 + dy1 * dy2 + dz1 * dz2;  // d1 . d2
      const double denom = a * e - b * b;
      if (denom > kEps) {
        s = std::clamp((b * f - c * e) / denom, 0.0, 1.0);
      }
      t = (b * s + f) / e;
      if (t < 0.0) {
        t = 0.0;
        s = std::clamp(-c / a, 0.0, 1.0);
      } else if (t > 1.0) {
        t = 1.0;
        s = std::clamp((b - c) / a, 0.0, 1.0);
      }
    }
  }

  const double cx = rx + s * dx1 - t * dx2;
  const double cy = ry + s * dy1 - t * dy2;
  const double cz = rz + s * dz1 - t * dz2;
  return std::sqrt(cx * cx + cy * cy + cz * cz);
}

double CylinderDistance(const Cylinder& a, const Cylinder& b) {
  const double axis_distance = SegmentDistance(a.start, a.end, b.start, b.end);
  return std::max(0.0, axis_distance - a.radius - b.radius);
}

bool CylindersWithinDistance(const Cylinder& a, const Cylinder& b,
                             double epsilon) {
  return CylinderDistance(a, b) <= epsilon;
}

}  // namespace touch
