#include "geom/box.h"

#include <cstdio>

namespace touch {

Box Intersection(const Box& a, const Box& b) {
  Box r(Vec3(std::max(a.lo.x, b.lo.x), std::max(a.lo.y, b.lo.y),
             std::max(a.lo.z, b.lo.z)),
        Vec3(std::min(a.hi.x, b.hi.x), std::min(a.hi.y, b.hi.y),
             std::min(a.hi.z, b.hi.z)));
  return r;
}

Box Union(const Box& a, const Box& b) {
  Box r = a;
  r.ExpandToContain(b);
  return r;
}

double MinDistance(const Box& a, const Box& b) {
  double sum = 0;
  for (int axis = 0; axis < 3; ++axis) {
    const double gap_lo = static_cast<double>(b.lo[axis]) - a.hi[axis];
    const double gap_hi = static_cast<double>(a.lo[axis]) - b.hi[axis];
    const double gap = std::max({gap_lo, gap_hi, 0.0});
    sum += gap * gap;
  }
  return std::sqrt(sum);
}

bool operator==(const Box& a, const Box& b) { return a.lo == b.lo && a.hi == b.hi; }

std::string Box::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[(%g,%g,%g)-(%g,%g,%g)]", lo.x, lo.y, lo.z,
                hi.x, hi.y, hi.z);
  return std::string(buf);
}

}  // namespace touch
