#ifndef TOUCH_GEOM_SPHERE_H_
#define TOUCH_GEOM_SPHERE_H_

#include "geom/box.h"
#include "geom/cylinder.h"
#include "geom/vec3.h"

namespace touch {

/// Sphere primitive for the refinement phase. The paper's filter phase only
/// sees MBRs; spheres are a second exact geometry (besides cylinders) that
/// downstream users of the library can refine with, e.g. for the medical-
/// imaging workloads the paper's introduction cites (cancerous cells within
/// a distance of each other).
struct Sphere {
  Vec3 center;
  float radius = 0;

  constexpr Sphere() = default;
  constexpr Sphere(const Vec3& c, float r) : center(c), radius(r) {}

  /// Minimum bounding box of the sphere.
  Box Mbr() const {
    const Vec3 r(radius, radius, radius);
    return Box(center - r, center + r);
  }
};

/// Surface-to-surface distance of two spheres (0 when they interpenetrate).
double SphereDistance(const Sphere& a, const Sphere& b);

/// Surface-to-surface distance between a sphere and a capped cylinder.
double SphereCylinderDistance(const Sphere& sphere, const Cylinder& cylinder);

/// Exact refinement predicates: true when the surfaces are within `epsilon`.
bool SpheresWithinDistance(const Sphere& a, const Sphere& b, double epsilon);
bool SphereCylinderWithinDistance(const Sphere& sphere,
                                  const Cylinder& cylinder, double epsilon);

/// Minimum distance between a point and the segment [s0, s1].
double PointSegmentDistance(const Vec3& p, const Vec3& s0, const Vec3& s1);

}  // namespace touch

#endif  // TOUCH_GEOM_SPHERE_H_
