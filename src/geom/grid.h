#ifndef TOUCH_GEOM_GRID_H_
#define TOUCH_GEOM_GRID_H_

#include <cstdint>

#include "geom/box.h"

namespace touch {

/// Integer cell coordinates of a uniform grid.
struct CellCoord {
  int x = 0;
  int y = 0;
  int z = 0;
};

/// Inclusive 3D range of grid cells covered by a box.
struct CellRange {
  CellCoord lo;
  CellCoord hi;

  /// Number of cells in the range.
  uint64_t Count() const {
    return static_cast<uint64_t>(hi.x - lo.x + 1) *
           static_cast<uint64_t>(hi.y - lo.y + 1) *
           static_cast<uint64_t>(hi.z - lo.z + 1);
  }
};

/// Maps boxes to cells of an equi-width grid laid over a rectangular domain.
///
/// This is the space-oriented partitioning primitive shared by PBSM (one grid
/// over the whole space), S3 (one grid per hierarchy level) and TOUCH's local
/// join (one grid per inner node). It only does geometry; callers own the
/// per-cell containers.
///
/// Cells at the domain boundary absorb anything outside the domain: boxes are
/// clamped into the valid cell range so no object is ever lost.
class GridMapper {
 public:
  /// Grid over `domain` with `resolution[axis]` cells per axis (>= 1 each).
  GridMapper(const Box& domain, int res_x, int res_y, int res_z);

  /// Convenience: cubic resolution.
  GridMapper(const Box& domain, int resolution)
      : GridMapper(domain, resolution, resolution, resolution) {}

  int res_x() const { return res_[0]; }
  int res_y() const { return res_[1]; }
  int res_z() const { return res_[2]; }

  /// Total number of cells (may overflow 32 bits for fine grids).
  uint64_t TotalCells() const {
    return static_cast<uint64_t>(res_[0]) * res_[1] * res_[2];
  }

  /// Cell containing a point (clamped into the grid).
  CellCoord CellOf(const Vec3& p) const;

  /// Inclusive range of cells a box overlaps (clamped into the grid).
  CellRange RangeOf(const Box& box) const;

  /// Geometric bounds of one cell.
  Box CellBounds(const CellCoord& c) const;

  /// Packs a cell coordinate into a 64-bit key (21 bits per axis) for use in
  /// hash maps of occupied cells.
  static uint64_t PackKey(const CellCoord& c) {
    return (static_cast<uint64_t>(c.x) << 42) |
           (static_cast<uint64_t>(c.y) << 21) | static_cast<uint64_t>(c.z);
  }

  /// Inverse of PackKey.
  static CellCoord UnpackKey(uint64_t key) {
    return CellCoord{static_cast<int>(key >> 42),
                     static_cast<int>((key >> 21) & 0x1fffff),
                     static_cast<int>(key & 0x1fffff)};
  }

 private:
  Box domain_;
  int res_[3];
  float cell_w_[3];   // cell width per axis
  float inv_w_[3];    // 1 / cell width
};

/// The reference point of an intersection region: its minimum corner. PBSM
/// uses it to report each result pair exactly once — only the grid cell that
/// contains the reference point reports the pair.
inline Vec3 ReferencePoint(const Box& a, const Box& b) {
  return Vec3(std::max(a.lo.x, b.lo.x), std::max(a.lo.y, b.lo.y),
              std::max(a.lo.z, b.lo.z));
}

}  // namespace touch

#endif  // TOUCH_GEOM_GRID_H_
