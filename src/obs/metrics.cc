#include "obs/metrics.h"

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

namespace touch {
namespace {

// Prometheus sample values: integers print bare, fractions keep enough
// digits to round-trip a double.
std::string FormatValue(double value) {
  if (value == static_cast<int64_t>(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

// `touch_engine_requests_total{status="ok"}` -> family
// `touch_engine_requests_total` (one # TYPE line per family).
std::string FamilyOf(const std::string& name) {
  return name.substr(0, name.find('{'));
}

void EmitTypeLine(std::ostream& out, std::set<std::string>& seen,
                  const std::string& family, const char* type) {
  if (seen.insert(family).second) {
    out << "# TYPE " << family << " " << type << "\n";
  }
}

}  // namespace

double Histogram::BucketBound(size_t i) {
  return 1e-6 * static_cast<double>(uint64_t{1} << i);
}

void Histogram::Observe(double seconds) {
  size_t bucket = kFiniteBuckets;  // +Inf unless a finite bound covers it
  for (size_t i = 0; i < kFiniteBuckets; ++i) {
    if (seconds <= BucketBound(i)) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + seconds,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

uint64_t Histogram::CumulativeCount(size_t i) const {
  uint64_t total = 0;
  for (size_t b = 0; b <= i && b <= kFiniteBuckets; ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Percentile(double p) const {
  uint64_t total = Count();
  if (total == 0) return 0.0;
  // ceil(p * total) observations must fall at or below the answer.
  uint64_t target = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(total)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kFiniteBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) return BucketBound(i);
  }
  return BucketBound(kFiniteBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::SetProvider(const std::string& name, MetricType type,
                                  std::function<double()> sample) {
  MutexLock lock(mutex_);
  providers_[name] = Provider{type, std::move(sample)};
}

void MetricsRegistry::RemoveProvider(const std::string& name) {
  MutexLock lock(mutex_);
  providers_.erase(name);
}

void MetricsRegistry::RemoveProvidersWithPrefix(const std::string& prefix) {
  MutexLock lock(mutex_);
  for (auto it = providers_.begin(); it != providers_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = providers_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t MetricsRegistry::FamilyCount() const {
  MutexLock lock(mutex_);
  std::set<std::string> families;
  for (const auto& [name, _] : counters_) families.insert(FamilyOf(name));
  for (const auto& [name, _] : gauges_) families.insert(FamilyOf(name));
  for (const auto& [name, _] : histograms_) families.insert(FamilyOf(name));
  for (const auto& [name, _] : providers_) families.insert(FamilyOf(name));
  return families.size();
}

void MetricsRegistry::ExportPrometheus(std::ostream& out) const {
  // Sample providers outside the registry lock where possible? No:
  // provider callbacks only read atomics/snapshots, and holding the lock
  // keeps export consistent with concurrent Remove calls.
  MutexLock lock(mutex_);
  std::set<std::string> typed;
  for (const auto& [name, counter] : counters_) {
    EmitTypeLine(out, typed, FamilyOf(name), "counter");
    out << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, provider] : providers_) {
    const char* type =
        provider.type == MetricType::kCounter ? "counter" : "gauge";
    EmitTypeLine(out, typed, FamilyOf(name), type);
    out << name << " " << FormatValue(provider.sample()) << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    EmitTypeLine(out, typed, FamilyOf(name), "gauge");
    out << name << " " << FormatValue(gauge->Value()) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string family = FamilyOf(name);
    EmitTypeLine(out, typed, family, "histogram");
    // Only emit buckets up to the last occupied one (plus +Inf): 40 fixed
    // buckets per histogram would swamp the exposition with zeros.
    uint64_t total = histogram->Count();
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i) {
      uint64_t in_bucket = histogram->CumulativeCount(i) -
                           (i == 0 ? 0 : histogram->CumulativeCount(i - 1));
      if (in_bucket > 0) last = i;
    }
    for (size_t i = 0; i <= last; ++i) {
      out << family << "_bucket{le=\"" << FormatValue(Histogram::BucketBound(i))
          << "\"} " << histogram->CumulativeCount(i) << "\n";
    }
    out << family << "_bucket{le=\"+Inf\"} " << total << "\n";
    out << family << "_sum " << FormatValue(histogram->Sum()) << "\n";
    out << family << "_count " << total << "\n";
  }
}

}  // namespace touch
