#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace touch {
namespace {

thread_local TraceContext g_ambient_context;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// JSON string escaping for the Chrome trace export (control characters,
// quotes, backslashes; everything else passes through byte-for-byte).
void AppendJsonEscaped(std::ostream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

void WriteEventArgs(std::ostream& out, const SpanRecord& record) {
  out << "\"args\":{\"trace_id\":\"" << record.trace_id << "\",\"span_id\":\""
      << record.span_id << "\",\"parent_id\":\"" << record.parent_id << "\"";
  for (const auto& [key, value] : record.attrs) {
    out << ",\"";
    AppendJsonEscaped(out, key);
    out << "\":\"";
    AppendJsonEscaped(out, value);
    out << "\"";
  }
  out << "}";
}

// Nanoseconds as fractional microseconds ("1234.005"); the fraction must be
// zero-padded or 5ns would print as ".5" and misread as half a microsecond.
void WriteMicros(std::ostream& out, int64_t ns) {
  const int64_t frac = ns % 1000;
  out << ns / 1000 << "." << static_cast<char>('0' + frac / 100)
      << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
}

void WriteEvent(std::ostream& out, const SpanRecord& record) {
  out << "{\"name\":\"";
  AppendJsonEscaped(out, record.name);
  out << "\",\"ph\":\"" << (record.instant ? 'i' : 'X') << "\"";
  if (record.instant) {
    out << ",\"s\":\"t\"";
  }
  // Chrome trace timestamps are microseconds (fractional allowed).
  out << ",\"ts\":";
  WriteMicros(out, record.start_ns);
  if (!record.instant) {
    out << ",\"dur\":";
    WriteMicros(out, record.duration_ns);
  }
  out << ",\"pid\":1,\"tid\":" << record.thread << ",";
  WriteEventArgs(out, record);
  out << "}";
}

}  // namespace

TraceContext CurrentTraceContext() { return g_ambient_context; }

int64_t TraceClockNs() { return NowNs(); }

uint32_t CurrentThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t index = next.fetch_add(1);
  return index;
}

Tracer::Tracer(const TracerOptions& options) : options_(options) {
  if (options_.buffer_capacity == 0) options_.buffer_capacity = 1;
  if (options_.buffers == 0) options_.buffers = 1;
  buffers_ = std::vector<Buffer>(options_.buffers);
  for (auto& buffer : buffers_) {
    buffer.slots = std::make_unique<Slot[]>(options_.buffer_capacity);
  }
}

void Tracer::Record(SpanRecord record) {
  Buffer& buffer = buffers_[CurrentThreadIndex() % buffers_.size()];
  size_t index = buffer.reserved.fetch_add(1, std::memory_order_relaxed);
  if (index >= options_.buffer_capacity) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = buffer.slots[index];
  slot.record = std::move(record);
  slot.ready.store(true, std::memory_order_release);
}

void Tracer::RecordInstant(uint64_t trace_id, uint64_t parent_id,
                           std::string name, std::vector<SpanAttr> attrs) {
  SpanRecord record;
  record.trace_id = trace_id;
  record.span_id = NewSpanId();
  record.parent_id = parent_id;
  record.start_ns = NowNs();
  record.thread = CurrentThreadIndex();
  record.instant = true;
  record.name = std::move(name);
  record.attrs = std::move(attrs);
  Record(std::move(record));
}

size_t Tracer::span_count() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    size_t reserved = buffer.reserved.load(std::memory_order_acquire);
    size_t used = std::min(reserved, options_.buffer_capacity);
    for (size_t i = 0; i < used; ++i) {
      if (buffer.slots[i].ready.load(std::memory_order_acquire)) ++total;
    }
  }
  return total;
}

uint64_t Tracer::drops() const {
  return drops_.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> records;
  for (const auto& buffer : buffers_) {
    size_t reserved = buffer.reserved.load(std::memory_order_acquire);
    size_t used = std::min(reserved, options_.buffer_capacity);
    for (size_t i = 0; i < used; ++i) {
      if (buffer.slots[i].ready.load(std::memory_order_acquire)) {
        records.push_back(buffer.slots[i].record);
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  return records;
}

void Tracer::ExportChromeTrace(std::ostream& out) const {
  std::vector<SpanRecord> records = Snapshot();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& record : records) {
    if (!first) out << ",\n";
    first = false;
    WriteEvent(out, record);
  }
  uint64_t dropped = drops();
  if (dropped > 0) {
    if (!first) out << ",\n";
    SpanRecord note;
    note.span_id = 0;
    note.start_ns = records.empty() ? 0 : records.back().start_ns;
    note.instant = true;
    note.name = "tracer-drops";
    note.attrs.emplace_back("dropped", std::to_string(dropped));
    WriteEvent(out, note);
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::Clear() {
  for (auto& buffer : buffers_) {
    size_t reserved = buffer.reserved.load(std::memory_order_acquire);
    size_t used = std::min(reserved, options_.buffer_capacity);
    for (size_t i = 0; i < used; ++i) {
      buffer.slots[i].ready.store(false, std::memory_order_relaxed);
      buffer.slots[i].record = SpanRecord{};
    }
    buffer.reserved.store(0, std::memory_order_release);
  }
  drops_.store(0, std::memory_order_relaxed);
}

SpanScope::SpanScope(const TraceContext& parent, std::string name) {
  if (!parent.active()) return;
  context_.tracer = parent.tracer;
  context_.trace_id = parent.trace_id;
  context_.span_id = parent.tracer->NewSpanId();
  parent_id_ = parent.span_id;
  start_ns_ = NowNs();
  name_ = std::move(name);
  previous_ = g_ambient_context;
  g_ambient_context = context_;
}

void SpanScope::AddAttr(std::string key, std::string value) {
  if (!context_.active()) return;
  attrs_.emplace_back(std::move(key), std::move(value));
}

void SpanScope::End() {
  if (!context_.active()) return;
  g_ambient_context = previous_;
  SpanRecord record;
  record.trace_id = context_.trace_id;
  record.span_id = context_.span_id;
  record.parent_id = parent_id_;
  record.start_ns = start_ns_;
  record.duration_ns = NowNs() - start_ns_;
  record.thread = CurrentThreadIndex();
  record.name = std::move(name_);
  record.attrs = std::move(attrs_);
  context_.tracer->Record(std::move(record));
  context_ = TraceContext{};  // deactivate: End() is idempotent
}

}  // namespace touch
