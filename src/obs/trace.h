#ifndef TOUCH_OBS_TRACE_H_
#define TOUCH_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace touch {

class Tracer;

// Thread-safety note: the tracer is deliberately mutex-free — span slots
// are claimed with a fetch_add ticket and published with a release store
// (readers acquire), so recording never blocks a kernel. There is no
// capability to annotate; the invariants here are memory-ordering ones,
// covered by the TSan CI leg rather than -Wthread-safety.

/// One attribute of a span or instant event (both key and value are plain
/// strings; numeric attrs are formatted by the caller).
using SpanAttr = std::pair<std::string, std::string>;

/// One finished span or instant event, as stored in the tracer's buffers
/// and exported to Chrome/Perfetto trace JSON.
///
/// `trace_id` correlates every span of one request (JoinResult::trace_id);
/// `parent_id` links the span tree (0 = root). `duration_ns` of 0 together
/// with `instant` marks a point event (a phase transition, a cancellation).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  /// Process-local sequential thread index (the Chrome trace "tid").
  uint32_t thread = 0;
  bool instant = false;
  std::string name;
  std::vector<SpanAttr> attrs;
};

/// Where a span would attach: the tracer plus the (trace, span) ids a child
/// should parent onto. Cheap value type; inactive (null tracer) contexts
/// make every tracing call a no-op, so instrumented code never branches on
/// "is tracing on" itself.
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool active() const { return tracer != nullptr; }
};

/// The ambient trace context of the calling thread: the innermost live
/// SpanScope on this thread, or an inactive context when none is open.
/// This is how the execution kernels (TOUCH assignment, PBSM merge, INL
/// probe) attach phase spans without any tracing plumbing in their APIs —
/// the engine opens an "execute" SpanScope around the kernel call, the
/// kernel's own SpanScope picks the context up from here.
TraceContext CurrentTraceContext();

/// A process-local sequential index for the calling thread (stable for the
/// thread's lifetime); doubles as the exported trace's tid.
uint32_t CurrentThreadIndex();

/// The tracing clock (steady, nanoseconds) — for callers that record spans
/// manually and must stamp start_ns on the same timeline SpanScope uses.
int64_t TraceClockNs();

struct TracerOptions {
  /// Spans each buffer can hold. Memory is bounded by
  /// buffers * buffer_capacity records; once a buffer is full, *new* spans
  /// are dropped (and counted in drops()) rather than overwriting old ones —
  /// the roots and early phases of a trace matter more than its tail.
  size_t buffer_capacity = 8192;
  /// Number of append buffers. Threads are assigned one by thread index, so
  /// up to this many threads append with zero contention; beyond it, threads
  /// share buffers (appends stay lock-free either way).
  size_t buffers = 16;
};

/// Per-request span recorder with bounded memory.
///
/// Appends are lock-free and allocation-bounded: each recording thread
/// writes into its assigned buffer slot (claimed with one fetch_add) and
/// publishes it with one release store — no mutex is ever taken on the
/// record path, so tracing can stay enabled in serving builds. A full
/// buffer drops the new record and counts it (drops()); dropped spans can
/// orphan their children in the exported tree, which tools/trace_summary.py
/// reports.
///
/// Export (ExportChromeTrace, Snapshot) may run concurrently with
/// recording: it sees every record published before it started and skips
/// slots still being written. Clear() is the one exception — it requires
/// quiescence (no concurrent recorders) and exists for tests and
/// between-run reuse.
class Tracer {
 public:
  explicit Tracer(const TracerOptions& options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// A fresh nonzero trace id (one per request).
  uint64_t NewTraceId() { return next_trace_id_.fetch_add(1) + 1; }

  /// A fresh nonzero span id. SpanScope calls this itself; it is public for
  /// callers that record spans manually (the engine's request root span,
  /// whose lifetime crosses threads and outlives any one scope).
  uint64_t NewSpanId() { return next_span_id_.fetch_add(1) + 1; }

  /// Appends one finished record as-is (all fields caller-supplied).
  /// Lock-free; drops and counts when the thread's buffer is full.
  void Record(SpanRecord record);

  /// Appends an instant event at the current time on the calling thread.
  void RecordInstant(uint64_t trace_id, uint64_t parent_id, std::string name,
                     std::vector<SpanAttr> attrs = {});

  /// Records published so far (drops excluded).
  size_t span_count() const;

  /// Records dropped because their buffer was full.
  uint64_t drops() const;

  /// Copies every published record, sorted by start time (test and tooling
  /// surface; export formats are built on it).
  std::vector<SpanRecord> Snapshot() const;

  /// Writes the Chrome/Perfetto `trace_event` JSON array format: complete
  /// ("X") events for spans, instant ("i") events for point records, span
  /// ids and attrs under "args". Load via chrome://tracing or
  /// https://ui.perfetto.dev. When records were dropped, a final
  /// "tracer-drops" instant event carries the count.
  void ExportChromeTrace(std::ostream& out) const;

  /// Drops every record. Requires quiescence: must not run concurrently
  /// with Record (tests, or between CLI runs).
  void Clear();

  const TracerOptions& options() const { return options_; }

 private:
  struct Slot {
    std::atomic<bool> ready{false};
    SpanRecord record;
  };
  struct Buffer {
    std::unique_ptr<Slot[]> slots;
    /// Claims slots; values >= capacity mean the buffer overflowed.
    std::atomic<size_t> reserved{0};
  };

  TracerOptions options_;
  std::vector<Buffer> buffers_;
  std::atomic<uint64_t> next_trace_id_{0};
  std::atomic<uint64_t> next_span_id_{0};
  std::atomic<uint64_t> drops_{0};
};

/// RAII span: opens on construction, records on End() or destruction, and
/// makes itself the calling thread's ambient context (CurrentTraceContext)
/// for its lifetime, so anything called underneath — including the
/// execution kernels — can attach children without plumbing.
///
/// Scopes must nest per thread (construct/End in LIFO order on the same
/// thread); the engine's phase structure guarantees that. An inactive scope
/// (default-constructed, or built from an inactive context) records nothing
/// and costs two thread-local accesses.
class SpanScope {
 public:
  /// Inactive span.
  SpanScope() = default;

  /// Child of the calling thread's ambient context (no-op when there is
  /// none) — the kernel-side constructor.
  explicit SpanScope(std::string name)
      : SpanScope(CurrentTraceContext(), std::move(name)) {}

  /// Child of an explicit context (the engine-side constructor; no-op when
  /// the context is inactive).
  SpanScope(const TraceContext& parent, std::string name);

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() { End(); }

  bool active() const { return context_.active(); }

  /// This span as a parent for children (inactive when the scope is).
  const TraceContext& context() const { return context_; }

  /// Attaches an attribute (exported under "args"); no-op when inactive.
  void AddAttr(std::string key, std::string value);

  /// Ends the span now and records it; idempotent, also run by the
  /// destructor. Restores the previous ambient context.
  void End();

 private:
  TraceContext context_;   // inactive => whole scope is a no-op
  TraceContext previous_;  // ambient context to restore on End
  uint64_t parent_id_ = 0;
  int64_t start_ns_ = 0;
  std::string name_;
  std::vector<SpanAttr> attrs_;
};

}  // namespace touch

#endif  // TOUCH_OBS_TRACE_H_
