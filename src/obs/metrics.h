#ifndef TOUCH_OBS_METRICS_H_
#define TOUCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "util/thread_annotations.h"

namespace touch {

/// Monotonic counter (requests served, cache hits). Thread-safe.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value that can move both ways (queue depth, busy workers).
/// Thread-safe.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram over fixed log2 buckets: bucket i has upper bound
/// 1e-6 * 2^i seconds (1 µs up to ~9.1 hours across 40 buckets, plus a
/// +Inf overflow bucket). Fixed bounds keep Observe lock-free and make
/// histograms from different processes mergeable; one power-of-two
/// resolution is plenty for the p50/p95/p99 questions this answers.
class Histogram {
 public:
  static constexpr size_t kFiniteBuckets = 40;

  /// Upper bound of finite bucket i, in seconds.
  static double BucketBound(size_t i);

  void Observe(double seconds);

  uint64_t Count() const;
  double Sum() const;

  /// Smallest bucket upper bound covering fraction `p` (0 < p <= 1) of the
  /// observations: an upper estimate of the percentile, exact to within one
  /// power-of-two bucket. Returns 0 with no observations; returns the
  /// largest finite bound when the percentile lands in the overflow bucket.
  double Percentile(double p) const;

  /// Cumulative count of observations <= BucketBound(i); index
  /// kFiniteBuckets returns the total (the +Inf bucket).
  uint64_t CumulativeCount(size_t i) const;

 private:
  std::array<std::atomic<uint64_t>, kFiniteBuckets + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricType { kCounter, kGauge };

/// A process-wide registry of named metrics with Prometheus text export.
///
/// Names follow Prometheus conventions and may carry one inline label set:
/// `touch_engine_requests_total{status="ok"}`. The family (the name up to
/// the '{') groups labeled series under one `# TYPE` line. Metric objects
/// are created on first access and never destroyed, so references returned
/// by counter()/gauge()/histogram() stay valid for the registry's lifetime
/// and hot paths can cache them.
///
/// Providers are callbacks sampled at export time for values owned
/// elsewhere (cache entry counts, pool queue depth); the owner must
/// RemoveProvider (or RemoveProvidersWithPrefix) before the sampled object
/// dies.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The default process-wide registry ("process-wide" in the tentpole
  /// sense: one shared scrape surface unless a caller wires its own).
  static MetricsRegistry& Global();

  Counter& counter(const std::string& name) EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) EXCLUDES(mutex_);

  /// Registers a sampled metric: `sample` runs at export time. Replaces an
  /// existing provider of the same name.
  void SetProvider(const std::string& name, MetricType type,
                   std::function<double()> sample) EXCLUDES(mutex_);
  void RemoveProvider(const std::string& name) EXCLUDES(mutex_);
  /// Removes every provider whose name starts with `prefix` (owner
  /// teardown, e.g. the engine unregistering its cache/pool providers).
  void RemoveProvidersWithPrefix(const std::string& prefix) EXCLUDES(mutex_);

  /// Number of distinct metric families (the `# TYPE` lines Prometheus
  /// export would emit) — the "≥ 12 distinct metrics" acceptance check.
  size_t FamilyCount() const EXCLUDES(mutex_);

  /// Prometheus text exposition format, sorted by name: one `# TYPE` line
  /// per family, counters/gauges as single samples, histograms in native
  /// `_bucket{le=...}` / `_sum` / `_count` form. Provider callbacks run
  /// under the registry lock; they must not call back into this registry.
  void ExportPrometheus(std::ostream& out) const EXCLUDES(mutex_);

 private:
  struct Provider {
    MetricType type;
    std::function<double()> sample;
  };

  mutable Mutex mutex_;
  // node-based maps: values never move, so returned references are stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
  std::map<std::string, Provider> providers_ GUARDED_BY(mutex_);
};

}  // namespace touch

#endif  // TOUCH_OBS_METRICS_H_
