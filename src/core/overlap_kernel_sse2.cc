// SSE2 kernel TU (4 lanes). CMake compiles this file with -msse2 (the
// x86-64 baseline, so effectively a no-op flag) on x86 targets; elsewhere
// the TU is empty and the dispatcher never references its getter.

#if defined(__x86_64__) || defined(__i386__)

#define TOUCH_SIMD_TU_LEVEL 2
#define TOUCH_SIMD_TU_TABLE KernelTableSse2
#include "core/overlap_kernel_impl.h"

#endif  // x86
