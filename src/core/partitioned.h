#ifndef TOUCH_CORE_PARTITIONED_H_
#define TOUCH_CORE_PARTITIONED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "join/algorithm.h"

namespace touch {

/// Options of the partitioned (embarrassingly parallel) join driver.
struct PartitionedOptions {
  /// Number of spatial subsets the workload is cut into (the paper cuts its
  /// model into 16K contiguous subsets, one per BlueGene/P core).
  int partitions = 8;
  /// Worker threads; 0 or 1 runs the partitions sequentially (the paper's
  /// per-core perspective), otherwise partitions are processed concurrently.
  int threads = 1;
};

/// The paper's deployment model (section 3): the spatial join is
/// embarrassingly parallel, so the dataset is split into contiguous spatial
/// subsets, each joined locally and independently.
///
/// The driver slices the joint extent into `partitions` equi-width slabs
/// along the longest axis. Dataset A is assigned to every slab its boxes
/// overlap (a halo, so cross-boundary pairs are not lost); dataset B is
/// assigned to exactly one slab (by reference corner), which makes each
/// result pair unique to one slab — no deduplication pass is needed. Each
/// slab is then joined with its own instance of the wrapped algorithm,
/// optionally on worker threads.
///
/// `make_algorithm` supplies a fresh algorithm per slab (instances are not
/// required to be thread-safe). Counters of all slabs are merged;
/// memory_bytes reports the largest single slab (slabs are transient),
/// plus the slab bookkeeping itself.
JoinStats PartitionedJoin(
    const std::function<std::unique_ptr<SpatialJoinAlgorithm>()>&
        make_algorithm,
    std::span<const Box> a, std::span<const Box> b,
    const PartitionedOptions& options, ResultCollector& out);

/// Distance-join variant: enlarges `a` by epsilon first (same translation as
/// DistanceJoin).
JoinStats PartitionedDistanceJoin(
    const std::function<std::unique_ptr<SpatialJoinAlgorithm>()>&
        make_algorithm,
    std::span<const Box> a, std::span<const Box> b, float epsilon,
    const PartitionedOptions& options, ResultCollector& out);

}  // namespace touch

#endif  // TOUCH_CORE_PARTITIONED_H_
