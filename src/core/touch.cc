#include "core/touch.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "core/overlap_kernel.h"
#include "geom/grid.h"
#include "obs/trace.h"
#include "util/memory.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace touch {
namespace {

// Average extent per axis over a dataset (used to size local-join grid
// cells, paper section 5.2.2).
Vec3 AverageExtent(std::span<const Box> boxes) {
  if (boxes.empty()) return Vec3(0, 0, 0);
  double sx = 0;
  double sy = 0;
  double sz = 0;
  for (const Box& box : boxes) {
    const Vec3 e = box.Extent();
    sx += e.x;
    sy += e.y;
    sz += e.z;
  }
  const double inv = 1.0 / static_cast<double>(boxes.size());
  return Vec3(static_cast<float>(sx * inv), static_cast<float>(sy * inv),
              static_cast<float>(sz * inv));
}

// Per-axis grid resolution for one inner node: cells no smaller than
// `min_cell_edge` on each axis, capped at `max_resolution` per axis and at
// `max_total_cells` overall (halving resolutions until the product fits).
void NodeGridResolution(const Box& node_mbr, const Vec3& min_cell_edge,
                        int max_resolution, uint64_t max_total_cells,
                        int out_res[3]) {
  const Vec3 extent = node_mbr.Extent();
  const float ext[3] = {extent.x, extent.y, extent.z};
  const float edge[3] = {min_cell_edge.x, min_cell_edge.y, min_cell_edge.z};
  for (int axis = 0; axis < 3; ++axis) {
    int res = max_resolution;
    if (edge[axis] > 0) {
      res = static_cast<int>(ext[axis] / edge[axis]);
    }
    out_res[axis] = std::clamp(res, 1, max_resolution);
  }
  while (static_cast<uint64_t>(out_res[0]) * out_res[1] * out_res[2] >
         max_total_cells) {
    for (int axis = 0; axis < 3; ++axis) {
      out_res[axis] = std::max(1, out_res[axis] / 2);
    }
  }
}

// Dense per-node grid, reused across nodes via epoch stamping: a cell's list
// is only valid when its stamp matches the current epoch, so switching to
// the next node is O(1) instead of clearing (or re-allocating) every cell.
// Array indexing here replaced a hash map that dominated the join phase.
class ReusableGrid {
 public:
  void Reset(uint64_t total_cells) {
    if (cells_.size() < total_cells) {
      cells_.resize(total_cells);
      epoch_mark_.resize(total_cells, 0);
    }
    ++epoch_;
  }

  std::vector<uint32_t>& Cell(uint64_t index) {
    std::vector<uint32_t>& cell = cells_[index];
    if (epoch_mark_[index] != epoch_) {
      epoch_mark_[index] = epoch_;
      cell.clear();
    }
    return cell;
  }

  // Occupants of a cell, empty when untouched this epoch.
  std::span<const uint32_t> Occupants(uint64_t index) const {
    if (epoch_mark_[index] != epoch_) return {};
    return cells_[index];
  }

  size_t MemoryUsageBytes() const {
    return NestedVectorBytes(cells_) + VectorBytes(epoch_mark_);
  }

 private:
  std::vector<std::vector<uint32_t>> cells_;
  std::vector<uint32_t> epoch_mark_;
  uint32_t epoch_ = 0;
};

}  // namespace

JoinStats TouchJoin::Join(std::span<const Box> a, std::span<const Box> b,
                          ResultCollector& out) {
  bool build_on_a = true;
  switch (options_.join_order) {
    case TouchOptions::JoinOrder::kAuto:
      // The smaller dataset builds the tree: it is sparser (or has a smaller
      // extent), which improves filtering, and the tree is cheaper to build.
      build_on_a = a.size() <= b.size();
      break;
    case TouchOptions::JoinOrder::kBuildOnA:
      build_on_a = true;
      break;
    case TouchOptions::JoinOrder::kBuildOnB:
      build_on_a = false;
      break;
  }
  if (build_on_a) return JoinOriented(a, b, /*swapped=*/false, out);
  return JoinOriented(b, a, /*swapped=*/true, out);
}

JoinStats TouchJoin::JoinWithPrebuiltTree(const TouchTree& tree,
                                          std::span<const Box> a,
                                          std::span<const Box> b,
                                          ResultCollector& out,
                                          float probe_epsilon,
                                          CancellationToken cancel) {
  return JoinOriented(a, b, /*swapped=*/false, out, &tree, probe_epsilon,
                      std::move(cancel));
}

JoinStats TouchJoin::JoinOriented(std::span<const Box> build,
                                  std::span<const Box> probe, bool swapped,
                                  ResultCollector& out,
                                  const TouchTree* prebuilt,
                                  float probe_epsilon,
                                  CancellationToken cancel) {
  JoinStats stats;
  Timer total;
  if (build.empty() || probe.empty()) {
    stats.filtered = probe.size();
    stats.total_seconds = total.Seconds();
    return stats;
  }

  // The grid local join reads probe boxes through ProbeBox and needs no
  // copy; the nested-loop / plane-sweep ablations take raw spans, so for
  // them the enlargement is materialized once (and reported in
  // memory_bytes).
  std::vector<Box> enlarged_probe;
  if (probe_epsilon > 0 &&
      options_.local_join != LocalJoinStrategy::kGrid) {
    enlarged_probe.reserve(probe.size());
    for (const Box& box : probe) {
      enlarged_probe.push_back(box.Enlarged(probe_epsilon));
    }
    probe = enlarged_probe;
    probe_epsilon = 0;
  }
  const auto ProbeBox = [probe, probe_epsilon](uint32_t probe_id) {
    return probe_epsilon > 0 ? probe[probe_id].Enlarged(probe_epsilon)
                             : probe[probe_id];
  };

  // ---- Phase 1: tree building (Algorithm 2) — skipped when the caller
  // supplies a prebuilt/converted tree (paper section 4.3). ----
  Timer phase;
  std::optional<TouchTree> owned_tree;
  if (prebuilt == nullptr) {
    size_t leaf_capacity = options_.leaf_capacity;
    if (leaf_capacity == 0) {
      const size_t partitions = std::max<size_t>(1, options_.partitions);
      leaf_capacity = (build.size() + partitions - 1) / partitions;
    }
    owned_tree.emplace(build, leaf_capacity, options_.fanout);
  }
  const TouchTree& tree = prebuilt != nullptr ? *prebuilt : *owned_tree;
  stats.build_seconds = prebuilt != nullptr ? 0.0 : phase.Seconds();

  // ---- Phase 2: assignment of the probe dataset (Algorithm 3). ----
  phase.Reset();
  // Ambient phase span: attaches under the engine's "execute" span when one
  // is open on this thread, no-op otherwise (library callers untouched).
  SpanScope assign_span("touch-assign");
  std::vector<std::vector<uint32_t>> entities(tree.nodes().size());
  const std::span<const TouchTree::Node> nodes = tree.nodes();
  const std::span<const uint32_t> child_ids = tree.child_ids();
  // SoA slab over every node's child MBRs, in child_ids order, so each
  // descent step classifies a node's whole child range with the batched
  // overlap kernel (one node.children_begin/count range per node). Built
  // once per join, shared read-only with the local-join phase below.
  BoxSlab child_mbr_slab;
  child_mbr_slab.AssignGenerated(
      child_ids.size(), [&](size_t i) { return nodes[child_ids[i]].mbr; });
  for (uint32_t probe_id = 0; probe_id < probe.size(); ++probe_id) {
    // Cooperative cancellation, amortized over a power-of-two stride so the
    // check costs one branch on the hot path.
    if ((probe_id & 2047u) == 0 && cancel.stop_requested()) break;
    const Box box = ProbeBox(probe_id);
    uint32_t current = tree.root();
    ++stats.node_comparisons;
    if (!Intersects(box, nodes[current].mbr)) {
      ++stats.filtered;
      continue;
    }
    bool placed = false;
    while (!nodes[current].IsLeaf()) {
      // Count children whose MBR overlaps the object; stop at the second
      // (ClassifyOverlaps keeps the scalar loop's early exit and examined
      // count, so node_comparisons stays the paper's metric).
      const TouchTree::Node& node = nodes[current];
      size_t first = 0;
      const int hits = ClassifyOverlaps(
          child_mbr_slab, node.children_begin,
          node.children_begin + node.children_count, box, &first,
          &stats.node_comparisons);
      if (hits >= 2) {
        // Overlaps several children: assign to their parent (this node).
        entities[current].push_back(probe_id);
        placed = true;
        break;
      }
      if (hits == 0) {
        // Inside the node's MBR but outside every child: dead space, the
        // object cannot intersect anything in this subtree.
        ++stats.filtered;
        placed = true;  // handled (filtered)
        break;
      }
      current = child_ids[first];
    }
    if (!placed) {
      // Reached a leaf: assign to the leaf (lowest possible placement).
      entities[current].push_back(probe_id);
    }
  }
  stats.assign_seconds = phase.Seconds();
  assign_span.End();

  // ---- Phase 3: per-node local join (Algorithm 4). ----
  phase.Reset();
  // Calling-thread span; the parallel path's spawned workers carry no
  // ambient context, so the one span covers the phase's wall clock.
  SpanScope local_join_span("touch-local-join");
  const std::span<const uint32_t> item_ids = tree.item_ids();

  // Minimum grid cell edge: a multiple of the average *raw* object extent
  // (the smaller of the two datasets' averages — the enlarged side of a
  // distance join must not dictate the cell size, see TouchOptions).
  const Vec3 avg_build = AverageExtent(build);
  const Vec3 avg_probe = AverageExtent(probe);
  const Vec3 min_cell_edge(
      options_.cell_size_multiplier * std::min(avg_build.x, avg_probe.x),
      options_.cell_size_multiplier * std::min(avg_build.y, avg_probe.y),
      options_.cell_size_multiplier * std::min(avg_build.z, avg_probe.z));

  // Per-worker scratch state; a single instance serves the sequential path.
  struct WorkerContext {
    JoinStats stats;
    ReusableGrid cells;
    std::vector<uint32_t> descent_stack;
    std::vector<uint32_t> hits;
    size_t max_grid_bytes = 0;
  };

  // Slabs for the grid local join, built once per join and shared
  // read-only across workers: the build items in item_ids order (so every
  // leaf's items are one contiguous range) and the probe boxes by probe id
  // with the remaining enlargement folded in (BoxAt round-trips the exact
  // ProbeBox floats, so reference-point dedup is unchanged). Like the
  // sweep's sorted copies, this probe scratch stays out of memory_bytes.
  BoxSlab item_slab;
  BoxSlab probe_slab;
  if (options_.local_join == LocalJoinStrategy::kGrid) {
    item_slab.AssignGenerated(
        item_ids.size(), [&](size_t i) { return build[item_ids[i]]; });
    probe_slab.Assign(probe, probe_epsilon);
  }

  // Joins one inner node's assigned probe entities against the build items
  // of its descendant leaves. `emit(build_id, probe_id)` must already handle
  // the swap back to (a, b) order.
  const auto join_node = [&](uint32_t node_id, WorkerContext& ctx,
                             auto&& emit) {
    const std::vector<uint32_t>& node_entities = entities[node_id];
    const TouchTree::Node& node = nodes[node_id];
    const auto items = item_ids.subspan(node.item_begin, node.ItemCount());

    // Subtree descent for entity-poor nodes: the probe object walks this
    // node's own hierarchy, pruning children by MBR, and is compared only
    // against the items of the leaves it reaches.
    const auto subtree_join = [&](uint32_t start_node, uint32_t probe_id) {
      const Box probe_box = probe_slab.BoxAt(probe_id);
      ctx.descent_stack.clear();
      ctx.descent_stack.push_back(start_node);
      while (!ctx.descent_stack.empty()) {
        const TouchTree::Node& current = nodes[ctx.descent_stack.back()];
        ctx.descent_stack.pop_back();
        ctx.hits.clear();
        if (current.IsLeaf()) {
          ctx.stats.comparisons +=
              CollectOverlaps(item_slab, current.item_begin,
                              current.item_end, probe_box, ctx.hits);
          for (const uint32_t pos : ctx.hits) emit(item_ids[pos], probe_id);
          continue;
        }
        // Matching children push in ascending order, as the scalar loop
        // did — this stack visits them last-pushed-first either way.
        ctx.stats.node_comparisons += CollectOverlaps(
            child_mbr_slab, current.children_begin,
            current.children_begin + current.children_count, probe_box,
            ctx.hits);
        for (const uint32_t pos : ctx.hits) {
          ctx.descent_stack.push_back(child_ids[pos]);
        }
      }
    };

    // Grid only where it pays: enough entities to amortize building it, and
    // not vastly fewer entities than descendant items (a handful of objects
    // descending a big subtree prunes most of it; a grid would make every
    // item probe cells for nothing).
    const bool grid_pays =
        node_entities.size() >= options_.grid_min_entities &&
        node_entities.size() * 16 >= items.size();
    if (options_.local_join == LocalJoinStrategy::kGrid && !grid_pays) {
      for (size_t i = 0; i < node_entities.size(); ++i) {
        if ((i & 1023u) == 0 && cancel.stop_requested()) return;
        subtree_join(node_id, node_entities[i]);
      }
      return;
    }
    if (options_.local_join == LocalJoinStrategy::kGrid) {
      // Equi-width grid over this node's region; the node's B entities are
      // scattered into the cells they overlap, then every descendant A
      // object probes the cells it overlaps. A pair straddling several
      // shared cells is reported only by the cell holding its reference
      // point.
      int res[3];
      NodeGridResolution(node.mbr, min_cell_edge, options_.grid_resolution,
                         /*max_total_cells=*/uint64_t{1} << 18, res);
      const GridMapper grid(node.mbr, res[0], res[1], res[2]);
      const uint64_t stride_y = static_cast<uint64_t>(res[2]);
      const uint64_t stride_x = stride_y * static_cast<uint64_t>(res[1]);
      ctx.cells.Reset(static_cast<uint64_t>(res[0]) * res[1] * res[2]);
      for (const uint32_t probe_id : node_entities) {
        const CellRange range = grid.RangeOf(probe_slab.BoxAt(probe_id));
        for (int x = range.lo.x; x <= range.hi.x; ++x) {
          for (int y = range.lo.y; y <= range.hi.y; ++y) {
            const uint64_t base = static_cast<uint64_t>(x) * stride_x +
                                  static_cast<uint64_t>(y) * stride_y;
            for (int z = range.lo.z; z <= range.hi.z; ++z) {
              ctx.cells.Cell(base + static_cast<uint64_t>(z))
                  .push_back(probe_id);
            }
          }
        }
      }
      for (size_t item_index = 0; item_index < items.size(); ++item_index) {
        if ((item_index & 4095u) == 0 && cancel.stop_requested()) return;
        const uint32_t build_id = items[item_index];
        const Box& build_box = build[build_id];
        const CellRange range = grid.RangeOf(build_box);
        for (int x = range.lo.x; x <= range.hi.x; ++x) {
          for (int y = range.lo.y; y <= range.hi.y; ++y) {
            const uint64_t base = static_cast<uint64_t>(x) * stride_x +
                                  static_cast<uint64_t>(y) * stride_y;
            for (int z = range.lo.z; z <= range.hi.z; ++z) {
              // The cell's occupants are probe ids in scatter order; the
              // gather kernel tests them against this item in that order
              // and counts one comparison per occupant, like the scalar
              // loop it replaces.
              ctx.hits.clear();
              ctx.stats.comparisons += CollectOverlapsGather(
                  probe_slab,
                  ctx.cells.Occupants(base + static_cast<uint64_t>(z)),
                  build_box, ctx.hits);
              for (const uint32_t probe_id : ctx.hits) {
                const Box probe_box = probe_slab.BoxAt(probe_id);
                const CellCoord home =
                    grid.CellOf(ReferencePoint(build_box, probe_box));
                if (home.x == x && home.y == y && home.z == z) {
                  emit(build_id, probe_id);
                }
              }
            }
          }
        }
      }
      ctx.max_grid_bytes =
          std::max(ctx.max_grid_bytes, ctx.cells.MemoryUsageBytes());
    } else if (options_.local_join == LocalJoinStrategy::kNestedLoop) {
      LocalNestedLoop(build, items, probe, node_entities, &ctx.stats, emit);
    } else {
      LocalPlaneSweep(build, items, probe, node_entities, &ctx.stats, emit);
    }
  };

  // Inner nodes with work to do.
  std::vector<uint32_t> active_nodes;
  for (uint32_t node_id = 0; node_id < nodes.size(); ++node_id) {
    if (!entities[node_id].empty() && nodes[node_id].ItemCount() > 0) {
      active_nodes.push_back(node_id);
    }
  }

  size_t max_grid_bytes = 0;
  const int threads =
      std::clamp(options_.threads, 1,
                 static_cast<int>(std::thread::hardware_concurrency() > 0
                                      ? std::thread::hardware_concurrency()
                                      : 1));
  if (threads <= 1 || active_nodes.size() < 2) {
    WorkerContext ctx;
    const auto emit = [&](uint32_t build_id, uint32_t probe_id) {
      ++ctx.stats.results;
      if (swapped) {
        out.Emit(probe_id, build_id);
      } else {
        out.Emit(build_id, probe_id);
      }
    };
    for (const uint32_t node_id : active_nodes) {
      if (cancel.stop_requested()) break;
      join_node(node_id, ctx, emit);
    }
    stats.MergeCounters(ctx.stats);
    max_grid_bytes = ctx.max_grid_bytes;
  } else {
    // The inner-node joins are independent; workers pull node ids from a
    // shared counter and buffer their pairs per node, flushing into the
    // (single-threaded) collector under a mutex.
    std::vector<WorkerContext> contexts(static_cast<size_t>(threads));
    std::atomic<size_t> next_node{0};
    Mutex out_mutex;
    const auto worker = [&](WorkerContext& ctx) {
      std::vector<std::pair<uint32_t, uint32_t>> pending;
      const auto emit = [&](uint32_t build_id, uint32_t probe_id) {
        ++ctx.stats.results;
        if (swapped) {
          pending.emplace_back(probe_id, build_id);
        } else {
          pending.emplace_back(build_id, probe_id);
        }
      };
      while (true) {
        if (cancel.stop_requested()) break;
        const size_t index = next_node.fetch_add(1);
        if (index >= active_nodes.size()) break;
        join_node(active_nodes[index], ctx, emit);
        if (!pending.empty()) {
          const MutexLock lock(out_mutex);
          for (const auto& [a_id, b_id] : pending) out.Emit(a_id, b_id);
          pending.clear();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(contexts.size());
    for (WorkerContext& ctx : contexts) pool.emplace_back(worker, std::ref(ctx));
    for (std::thread& t : pool) t.join();
    for (const WorkerContext& ctx : contexts) {
      stats.MergeCounters(ctx.stats);
      max_grid_bytes = std::max(max_grid_bytes, ctx.max_grid_bytes);
    }
  }
  stats.join_seconds = phase.Seconds();
  local_join_span.End();

  stats.memory_bytes = tree.MemoryUsageBytes() + NestedVectorBytes(entities) +
                       max_grid_bytes + VectorBytes(enlarged_probe);
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
