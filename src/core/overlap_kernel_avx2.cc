// AVX2 kernel TU (8 lanes). CMake compiles this file — and only this file —
// with -mavx2 on x86 targets, so the binary stays runnable on pre-AVX2
// hosts: the only AVX2 instructions anywhere are behind the dispatcher's
// cpuid check. Elsewhere the TU is empty and the getter is never referenced.

#if defined(__x86_64__) || defined(__i386__)

#define TOUCH_SIMD_TU_LEVEL 3
#define TOUCH_SIMD_TU_TABLE KernelTableAvx2
#include "core/overlap_kernel_impl.h"

#endif  // x86
