#include "core/overlap_kernel.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geom/box.h"
#include "index/rtree.h"
#include "join/algorithm.h"
#include "util/cancellation.h"
#include "util/simd.h"
#include "util/stats.h"

// Runtime kernel dispatcher. The kernels themselves live in the per-ISA
// translation units (overlap_kernel_{scalar,sse2,avx2,neon}.cc, each a
// TOUCH_SIMD_TU_LEVEL instantiation of overlap_kernel_impl.h with its own
// compile flags); this TU — built with baseline flags only — picks which
// table the entry points forward through.

namespace touch {
namespace {

/// The table for `level`, or nullptr when this binary/CPU cannot run it.
/// Getters for levels another architecture compiles are not referenced at
/// all (their TUs are empty there), mirroring simd::LevelCompiledIn.
const OverlapKernelTable* TableFor(simd::Level level) {
  if (!simd::LevelSupported(level)) return nullptr;
  switch (level) {
    case simd::Level::kScalar:
      return &internal::KernelTableScalar();
    case simd::Level::kNeon:
#if defined(__aarch64__) || defined(__ARM_NEON) || defined(__ARM_NEON__)
      return &internal::KernelTableNeon();
#else
      return nullptr;
#endif
    case simd::Level::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return &internal::KernelTableSse2();
#else
      return nullptr;
#endif
    case simd::Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return &internal::KernelTableAvx2();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::string AvailableLevelNames() {
  std::string out;
  for (const simd::Level level : simd::RuntimeAvailableLevels()) {
    if (!out.empty()) out += ' ';
    out += simd::LevelName(level);
  }
  return out;
}

/// Active table + whether an override picked it. Tables are immutable
/// static-storage constants, so lock-free pointer swaps are safe: a reader
/// that loaded the previous table just runs the previously-selected (still
/// correct) kernels for that call.
std::atomic<const OverlapKernelTable*> g_active{nullptr};
std::atomic<bool> g_forced{false};

/// First-use resolution: TOUCH_SIMD_LEVEL (when set and not "auto") wins and
/// MUST be honored — an impossible request terminates the process with a
/// diagnostic rather than silently running a different ISA, so a forced CI
/// leg can never green-wash itself — otherwise widest-supported dispatch.
const OverlapKernelTable& ResolveInitialTable() {
  const char* env = std::getenv("TOUCH_SIMD_LEVEL");
  if (env != nullptr && *env != '\0' && std::string_view(env) != "auto") {
    const std::optional<simd::Level> level = simd::ParseLevelName(env);
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "fatal: TOUCH_SIMD_LEVEL=%s is not a simd level "
                   "(expected auto, scalar, sse2, avx2, or neon)\n",
                   env);
      std::exit(EXIT_FAILURE);
    }
    const OverlapKernelTable* table = TableFor(*level);
    if (table == nullptr) {
      std::fprintf(stderr,
                   "fatal: TOUCH_SIMD_LEVEL=%s is not runnable here "
                   "(detected cpu features: %s; levels this binary can run: "
                   "%s)\n",
                   env, simd::DetectCpuFeatures().ToString().c_str(),
                   AvailableLevelNames().c_str());
      std::exit(EXIT_FAILURE);
    }
    g_forced.store(true, std::memory_order_relaxed);
    return *table;
  }
  return *TableFor(simd::DetectBestLevel());
}

}  // namespace

const OverlapKernelTable& ActiveKernels() {
  const OverlapKernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Lazy idempotent init: concurrent first calls all resolve to the same
    // table (resolution is deterministic in env + cpuid), so losing the CAS
    // just means another thread installed that identical choice first.
    const OverlapKernelTable* resolved = &ResolveInitialTable();
    if (g_active.compare_exchange_strong(table, resolved,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      table = resolved;
    }
  }
  return *table;
}

simd::Level ActiveSimdLevel() { return ActiveKernels().level; }

bool ForceSimdLevel(simd::Level level, std::string* error) {
  const OverlapKernelTable* table = TableFor(level);
  if (table == nullptr) {
    if (error != nullptr) {
      *error = std::string("simd level '") + simd::LevelName(level) +
               "' is not runnable here (detected cpu features: " +
               simd::DetectCpuFeatures().ToString() +
               "; levels this binary can run: " + AvailableLevelNames() + ")";
    }
    return false;
  }
  g_forced.store(true, std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return true;
}

bool SimdLevelForced() {
  ActiveKernels();  // resolve first, so a TOUCH_SIMD_LEVEL override is seen
  return g_forced.load(std::memory_order_relaxed);
}

const char* SimdLevelName() { return simd::LevelName(ActiveSimdLevel()); }
int SimdWidth() { return ActiveKernels().width; }
bool SimdEnabled() { return ActiveSimdLevel() != simd::Level::kScalar; }

// --- Entry points: forward through the active table --------------------------

size_t CollectOverlaps(const BoxSlab& slab, size_t begin, size_t end,
                       const Box& query, std::vector<uint32_t>& hits) {
  return ActiveKernels().collect(slab, begin, end, query, hits);
}

size_t CollectOverlapsUntilBeyondX(const BoxSlab& slab, size_t begin,
                                   size_t end, const Box& query,
                                   std::vector<uint32_t>& hits) {
  return ActiveKernels().sweep(slab, begin, end, query, hits);
}

int ClassifyOverlaps(const BoxSlab& slab, size_t begin, size_t end,
                     const Box& query, size_t* first, uint64_t* examined) {
  return ActiveKernels().classify(slab, begin, end, query, first, examined);
}

size_t CollectOverlapsGather(const BoxSlab& slab,
                             std::span<const uint32_t> positions,
                             const Box& query, std::vector<uint32_t>& hits) {
  return ActiveKernels().gather(slab, positions, query, hits);
}

uint64_t BatchedTreeProbe(const RTree& tree, const RTreeProbeSlabs& slabs,
                          std::span<const Box> queries, float probe_epsilon,
                          bool swap_emit, JoinStats* stats,
                          ResultCollector& out, CancellationToken cancel) {
  return ActiveKernels().tree_probe(tree, slabs, queries, probe_epsilon,
                                    swap_emit, stats, out, cancel);
}

// --- ISA-independent pieces ---------------------------------------------------

void RTreeProbeSlabs::Build(const RTree& tree, std::span<const Box> boxes,
                            float epsilon) {
  const std::span<const uint32_t> item_ids = tree.item_ids();
  items.AssignGenerated(
      item_ids.size(), [&](size_t i) { return boxes[item_ids[i]]; }, epsilon);
  const std::span<const uint32_t> child_ids = tree.child_ids();
  const std::span<const RTree::Node> nodes = tree.nodes();
  child_mbrs.AssignGenerated(
      child_ids.size(), [&](size_t i) { return nodes[child_ids[i]].mbr; },
      epsilon);
}

OverlapScratch& ThreadLocalOverlapScratch() {
  thread_local OverlapScratch scratch;
  return scratch;
}

}  // namespace touch
