#ifndef TOUCH_CORE_TOUCH_TREE_H_
#define TOUCH_CORE_TOUCH_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.h"
#include "index/rtree.h"

namespace touch {

/// The hierarchical data-oriented partitioning tree of TOUCH (paper sections
/// 4.3 and 5, Figure 5): an R-tree-like hierarchy bulk-loaded with STR over
/// dataset A. Leaf nodes reference the objects of A; inner nodes exist to
/// receive the objects of B during the assignment phase.
///
/// The tree is immutable after construction. Items (A object ids) are stored
/// in one flat array in DFS order, so *every* node's descendant objects form
/// one contiguous range — the join phase walks [item_begin, item_end) instead
/// of re-collecting leaves.
class TouchTree {
 public:
  struct Node {
    Box mbr;
    /// Children range in child_ids(); empty for leaves.
    uint32_t children_begin = 0;
    uint32_t children_count = 0;
    /// Descendant A objects: range in item_ids().
    uint32_t item_begin = 0;
    uint32_t item_end = 0;
    /// 0 = leaf; the root has the highest level.
    uint8_t level = 0;

    bool IsLeaf() const { return children_count == 0; }
    uint32_t ItemCount() const { return item_end - item_begin; }
  };

  /// Builds the tree over `boxes` with STR packing: leaves hold up to
  /// `leaf_capacity` objects, inner nodes have up to `fanout` children.
  TouchTree(std::span<const Box> boxes, size_t leaf_capacity, size_t fanout);

  /// Converts an existing bulk-loaded R-tree over dataset A into the TOUCH
  /// tree, skipping the tree-building phase entirely — the paper's section
  /// 4.3: "Should one of the datasets already be indexed with a hierarchical
  /// index which uses data-oriented partitioning, then this index can easily
  /// be converted to the tree needed for TOUCH". The item ids of `index`
  /// must refer to the same dataset span later passed to the join.
  static TouchTree FromRTree(const RTree& index);

  size_t size() const { return item_ids_.size(); }
  bool empty() const { return item_ids_.empty(); }

  uint32_t root() const { return root_; }
  std::span<const Node> nodes() const { return nodes_; }
  std::span<const uint32_t> child_ids() const { return child_ids_; }
  /// A object ids in DFS leaf order.
  std::span<const uint32_t> item_ids() const { return item_ids_; }

  /// Number of levels (1 for a single-leaf tree, 0 when empty).
  int height() const { return height_; }
  size_t num_leaves() const { return num_leaves_; }

  /// Exact bytes held by the tree structures.
  size_t MemoryUsageBytes() const;

 private:
  TouchTree() = default;  // used by FromRTree

  std::vector<Node> nodes_;
  std::vector<uint32_t> child_ids_;
  std::vector<uint32_t> item_ids_;
  uint32_t root_ = 0;
  int height_ = 0;
  size_t num_leaves_ = 0;
};

}  // namespace touch

#endif  // TOUCH_CORE_TOUCH_TREE_H_
