#ifndef TOUCH_CORE_TOUCH_H_
#define TOUCH_CORE_TOUCH_H_

#include "core/touch_tree.h"
#include "join/algorithm.h"
#include "join/local_join.h"
#include "util/cancellation.h"

namespace touch {

/// Tunable parameters of TOUCH (paper section 5.2). The defaults are the
/// paper's evaluated configuration: fanout 2, 1024 partitions, local-join
/// grid resolution 500.
struct TouchOptions {
  /// Number of STR buckets dataset A is grouped into (leaf count target);
  /// the leaf capacity becomes ceil(|A| / partitions).
  size_t partitions = 1024;
  /// If nonzero, a fixed leaf capacity overriding `partitions`.
  size_t leaf_capacity = 0;
  /// Children per inner node. Smaller fanout -> taller tree -> objects of B
  /// spread over more levels -> fewer comparisons (paper Figure 14).
  size_t fanout = 2;

  /// Local join strategy for inner-node vs descendant-leaf joins. The paper
  /// uses the space-oriented grid (Algorithm 4); the others are ablations.
  LocalJoinStrategy local_join = LocalJoinStrategy::kGrid;
  /// Maximum grid cells per dimension in the local join.
  int grid_resolution = 500;
  /// Lower bound of the grid cell edge, as a multiple of the average object
  /// extent ("considerably larger than the average size of the objects",
  /// section 5.2.2). The reference is the *smaller* of the two datasets'
  /// average extents: a distance join enlarges one dataset by epsilon, and
  /// keying the cells off the bloated side would make them an order of
  /// magnitude too coarse (the paper's 500-cell grid over the 1000-unit
  /// space is 4x the raw object size, not 4x the enlarged size).
  float cell_size_multiplier = 4.0f;
  /// Nodes with fewer assigned entities than this skip the grid: each entity
  /// instead descends the node's own subtree, pruned by child MBRs — cheaper
  /// than building a grid (or sorting the whole descendant item range) for a
  /// handful of objects.
  size_t grid_min_entities = 8;

  /// Which dataset builds the tree (paper section 5.2.3 argues for the
  /// smaller one, which kAuto picks).
  enum class JoinOrder { kAuto, kBuildOnA, kBuildOnB };
  JoinOrder join_order = JoinOrder::kAuto;

  /// Worker threads for the join phase (phase 3). The per-inner-node local
  /// joins are independent, so they parallelize the same way the paper's
  /// BlueGene deployment parallelizes whole subsets across cores. 0 or 1
  /// keeps the paper's single-threaded execution; results are identical
  /// either way (only the result *order* may differ). Phases 1 and 2 stay
  /// single-threaded: they are a small fraction of the join on selective
  /// workloads.
  int threads = 1;
};

/// TOUCH: in-memory spatial join by hierarchical data-oriented partitioning
/// (the paper's contribution, section 4).
///
/// Three phases: (1) bulk-load a TouchTree over the build dataset with STR;
/// (2) assign every probe object to the lowest tree node whose MBR covers it
/// without overlapping a sibling — objects overlapping nothing are *filtered*
/// out entirely; (3) join each node's assigned probe objects against the A
/// objects in its descendant leaves through a per-node equi-width grid.
/// Single assignment means no replication, no duplicate results, and a small
/// memory footprint; data-oriented partitioning keeps comparison counts low
/// on skewed data.
class TouchJoin : public SpatialJoinAlgorithm {
 public:
  explicit TouchJoin(const TouchOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "touch"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  /// Runs phases 2 and 3 against a tree that is already built over dataset
  /// `a` (constructed directly or converted with TouchTree::FromRTree) —
  /// the paper's section-4.3 shortcut for pre-indexed datasets. The tree's
  /// item ids must index into `a`. Join order is not swapped; build time is
  /// whatever the caller already paid.
  ///
  /// `probe_epsilon` enlarges every box of `b` on the fly (assignment and
  /// local join read b[i].Enlarged(probe_epsilon)), equivalent to passing a
  /// pre-enlarged copy of `b` but without materializing one — with the
  /// default grid local join, no per-call probe copy exists at all, which is
  /// what makes the engine's cached distance joins allocation-free. The
  /// nested-loop / plane-sweep local-join ablations still materialize one
  /// copy (and account for it in JoinStats::memory_bytes).
  ///
  /// `cancel` is polled cooperatively inside the assignment and local-join
  /// loops (every few thousand objects / once per inner node): once it
  /// fires, the join stops emitting and returns early with partial stats.
  /// The caller decides what a partial run means (the engine flags the
  /// request Cancelled); a default token makes every check free.
  JoinStats JoinWithPrebuiltTree(const TouchTree& tree,
                                 std::span<const Box> a,
                                 std::span<const Box> b, ResultCollector& out,
                                 float probe_epsilon = 0.0f,
                                 CancellationToken cancel = {});

  const TouchOptions& options() const { return options_; }

 private:
  /// Runs the three phases with `build` as the tree-building dataset and
  /// `probe` as the assigned dataset. `swapped` is true when build==B, in
  /// which case emitted pairs are flipped back to (a, b) order.
  /// `probe_epsilon` enlarges probe boxes on the fly and `cancel` stops the
  /// run early (see JoinWithPrebuiltTree).
  JoinStats JoinOriented(std::span<const Box> build,
                         std::span<const Box> probe, bool swapped,
                         ResultCollector& out,
                         const TouchTree* prebuilt = nullptr,
                         float probe_epsilon = 0.0f,
                         CancellationToken cancel = {});

  TouchOptions options_;
};

}  // namespace touch

#endif  // TOUCH_CORE_TOUCH_H_
