// NEON kernel TU (4 lanes). Compiled on ARM targets, where NEON is either
// architecturally mandatory (aarch64) or already assumed by the compiler
// (32-bit builds with __ARM_NEON); no per-TU flag is needed. Elsewhere the
// TU is empty and the dispatcher never references its getter.

#if defined(__aarch64__) || defined(__ARM_NEON) || defined(__ARM_NEON__)

#define TOUCH_SIMD_TU_LEVEL 1
#define TOUCH_SIMD_TU_TABLE KernelTableNeon
#include "core/overlap_kernel_impl.h"

#endif  // ARM
