#ifndef TOUCH_CORE_FACTORY_H_
#define TOUCH_CORE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/touch.h"
#include "join/indexed_nested_loop.h"
#include "join/insertion_rtree_join.h"
#include "join/nbps.h"
#include "join/octree_join.h"
#include "join/pbsm.h"
#include "join/rplus_join.h"
#include "join/s3.h"
#include "join/seeded_tree.h"
#include "join/sssj.h"

namespace touch {

/// Configurations for all algorithm families, used by the factory. Defaults
/// are the paper's evaluated settings (section 6.1).
struct AlgorithmConfig {
  PbsmOptions pbsm;           // resolution overridden by pbsm-<res> names
  S3Options s3;               // fanout 3, 5 levels
  SssjOptions sssj;           // 64 strips
  SeededTreeOptions seeded;   // fanout 2, 4 seed levels
  OctreeJoinOptions octree;   // leaf capacity 64, depth cap 10
  NbpsOptions nbps;           // resolution 100
  RPlusJoinOptions rplus;     // leaf capacity 64
  InsertionRTreeJoinOptions insertion_rtree;  // Guttman/R*, M=16 m=6
  RTreeJoinOptions rtree;     // fanout 2, 2KB (64-entry) leaves
  TouchOptions touch;         // fanout 2, 1024 partitions, grid 500
};

/// Builds a join algorithm by name:
///   "nl" | "ps" | "pbsm" | "pbsm-<res>" | "s3" | "sssj" | "rtree" |
///   "rtree-hilbert" | "rtree-tgs" | "rtree-guttman" | "rtree-rstar" |
///   "rplus" | "inl" | "seeded" | "octree" | "nbps" | "nbps-<res>" | "touch"
/// ("pbsm-500" and "pbsm-100" are the paper's two configurations). Returns
/// nullptr for unknown names.
std::unique_ptr<SpatialJoinAlgorithm> MakeAlgorithm(
    const std::string& name, const AlgorithmConfig& config = {});

/// Parses a "pbsm"/"pbsm-<res>" algorithm name into its grid resolution
/// ("pbsm" alone means the default). Returns false for every other name.
/// The single source of truth for the PBSM name grammar, shared by
/// MakeAlgorithm and the engine's cached-PBSM dispatch so the two paths
/// can never disagree on what counts as a PBSM plan.
bool ParsePbsmResolution(const std::string& name, int* resolution);

/// Names accepted by MakeAlgorithm, in the paper's presentation order.
std::vector<std::string> AllAlgorithmNames();

/// Comma-separated accepted names (including the parameterized forms), for
/// usage text and error messages.
std::string AlgorithmNamesHelp();

/// Error message for a name MakeAlgorithm rejected: quotes the bad name and
/// lists every accepted one, so callers can report it and exit instead of
/// dereferencing the nullptr.
std::string UnknownAlgorithmMessage(const std::string& name);

}  // namespace touch

#endif  // TOUCH_CORE_FACTORY_H_
