#include "core/factory.h"

#include <cstdlib>

#include "join/nested_loop.h"
#include "join/plane_sweep.h"
#include "join/rtree_join.h"
#include "join/sssj.h"

namespace touch {

std::unique_ptr<SpatialJoinAlgorithm> MakeAlgorithm(
    const std::string& name, const AlgorithmConfig& config) {
  if (name == "nl") return std::make_unique<NestedLoopJoin>();
  if (name == "ps") return std::make_unique<PlaneSweepJoin>();
  if (int resolution = 0; ParsePbsmResolution(name, &resolution)) {
    PbsmOptions options = config.pbsm;
    if (name != "pbsm") options.resolution = resolution;
    return std::make_unique<PbsmJoin>(options);
  }
  if (name.rfind("pbsm-", 0) == 0) return nullptr;  // bad <res>
  if (name == "s3") return std::make_unique<S3Join>(config.s3);
  if (name == "seeded") {
    return std::make_unique<SeededTreeJoin>(config.seeded);
  }
  if (name == "sssj") return std::make_unique<SssjJoin>(config.sssj);
  if (name == "rtree") return std::make_unique<RTreeSyncJoin>(config.rtree);
  if (name == "rtree-hilbert") {
    RTreeJoinOptions options = config.rtree;
    options.bulkload = BulkLoadMethod::kHilbert;
    return std::make_unique<RTreeSyncJoin>(options);
  }
  if (name == "rtree-guttman" || name == "rtree-rstar") {
    InsertionRTreeJoinOptions options = config.insertion_rtree;
    options.variant = name == "rtree-rstar" ? RTreeVariant::kRStar
                                            : RTreeVariant::kGuttman;
    return std::make_unique<InsertionRTreeJoin>(options);
  }
  if (name == "rtree-tgs") {
    RTreeJoinOptions options = config.rtree;
    options.bulkload = BulkLoadMethod::kTgs;
    return std::make_unique<RTreeSyncJoin>(options);
  }
  if (name == "inl") {
    return std::make_unique<IndexedNestedLoopJoin>(config.rtree);
  }
  if (name == "rplus") return std::make_unique<RPlusJoin>(config.rplus);
  if (name == "octree") return std::make_unique<OctreeJoin>(config.octree);
  if (name == "nbps") return std::make_unique<NbpsJoin>(config.nbps);
  if (name.rfind("nbps-", 0) == 0) {
    const int resolution = std::atoi(name.c_str() + 5);
    if (resolution <= 0) return nullptr;
    NbpsOptions options = config.nbps;
    options.resolution = resolution;
    return std::make_unique<NbpsJoin>(options);
  }
  if (name == "touch") return std::make_unique<TouchJoin>(config.touch);
  return nullptr;
}

bool ParsePbsmResolution(const std::string& name, int* resolution) {
  if (name == "pbsm") {
    *resolution = PbsmOptions{}.resolution;
    return true;
  }
  if (name.rfind("pbsm-", 0) != 0) return false;
  const int parsed = std::atoi(name.c_str() + 5);
  if (parsed <= 0) return false;
  *resolution = parsed;
  return true;
}

std::vector<std::string> AllAlgorithmNames() {
  return {"nl",           "ps",          "pbsm-500",
          "pbsm-100",     "s3",          "sssj",
          "inl",          "rtree",       "rtree-hilbert",
          "rtree-tgs",    "rtree-guttman", "rtree-rstar",
          "rplus",        "seeded",      "octree",
          "nbps",         "touch"};
}

std::string AlgorithmNamesHelp() {
  std::string help;
  for (const std::string& name : AllAlgorithmNames()) {
    if (!help.empty()) help += ", ";
    help += name;
  }
  help += ", pbsm-<res>, nbps-<res>";
  return help;
}

std::string UnknownAlgorithmMessage(const std::string& name) {
  return "unknown algorithm '" + name + "' (accepted: " + AlgorithmNamesHelp() +
         ")";
}

}  // namespace touch
