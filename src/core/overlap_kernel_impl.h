#ifndef TOUCH_CORE_OVERLAP_KERNEL_IMPL_H_
#define TOUCH_CORE_OVERLAP_KERNEL_IMPL_H_

// Per-ISA kernel bodies for the runtime-dispatched epsilon-overlap kernels.
//
// This header is included by exactly the per-ISA translation units
// (overlap_kernel_{scalar,sse2,avx2,neon}.cc), each of which defines:
//
//   TOUCH_SIMD_TU_LEVEL   the simd::Level value this TU implements (0..3);
//                         selects the intrinsic wrappers in util/simd.h
//   TOUCH_SIMD_TU_TABLE   the internal::KernelTable* getter the TU exports
//
// before the include. Everything here lives in an anonymous namespace, so
// each TU gets its own copies compiled with its own ISA flags (CMake adds
// -mavx2 to the AVX2 TU only); the single exported symbol per TU is the
// table getter at the bottom. TOUCH_SIMD_TU_LEVEL == 0 compiles the scalar
// reference loops — THE semantics every vector level is held to — which
// overlap_kernel_scalar.cc additionally re-exports as the public
// `...Scalar` twins for the differential tests.
//
// Kernel contracts (ascending hit order, scalar-identical comparison
// counts, structural tail masking) are documented on the declarations in
// overlap_kernel.h and verified by tests/overlap_kernel_test.cc at every
// runtime-available level.

#if !defined(TOUCH_SIMD_TU_LEVEL) || !defined(TOUCH_SIMD_TU_TABLE)
#error "overlap_kernel_impl.h is internal to the per-ISA kernel TUs"
#endif

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/overlap_kernel.h"
#include "geom/box.h"
#include "index/rtree.h"
#include "join/algorithm.h"
#include "util/cancellation.h"
#include "util/simd.h"
#include "util/stats.h"

namespace touch {
namespace {

#if TOUCH_SIMD_TU_LEVEL > 0

constexpr uint32_t kFullMask = (1u << simd::kWidth) - 1u;

/// Lanes of the chunk at `base` that are real slab elements (the rest is
/// sentinel padding). Padding is excluded structurally here — not only by
/// the ±inf sentinels — so even a ±inf query box cannot match a pad lane.
inline uint32_t ValidMask(size_t base, size_t end) {
  const size_t remaining = end - base;
  if (remaining >= static_cast<size_t>(simd::kWidth)) return kFullMask;
  return (1u << remaining) - 1u;
}

/// The query box broadcast across all lanes, one vector per bound.
struct QueryVecs {
  simd::FloatVec lo_x, hi_x, lo_y, hi_y, lo_z, hi_z;
};

inline QueryVecs BroadcastQuery(const Box& q) {
  return QueryVecs{simd::Broadcast(q.lo.x), simd::Broadcast(q.hi.x),
                   simd::Broadcast(q.lo.y), simd::Broadcast(q.hi.y),
                   simd::Broadcast(q.lo.z), simd::Broadcast(q.hi.z)};
}

/// Bit i set iff slab[base+i] overlaps the query: six lane-parallel
/// ordered-quiet <= tests ANDed together, collapsed to a bitmask. The exact
/// vector form of Intersects() / SlabOverlapScalar() — NaN in any bound
/// clears the lane, as scalar <= would.
inline uint32_t ChunkMask(const BoxSlab& slab, size_t base,
                          const QueryVecs& q) {
  using simd::CmpLE;
  using simd::LoadUnaligned;
  using simd::MaskAnd;
  simd::MaskVec m = CmpLE(q.lo_x, LoadUnaligned(slab.hi_x() + base));
  m = MaskAnd(m, CmpLE(LoadUnaligned(slab.lo_x() + base), q.hi_x));
  m = MaskAnd(m, CmpLE(q.lo_y, LoadUnaligned(slab.hi_y() + base)));
  m = MaskAnd(m, CmpLE(LoadUnaligned(slab.lo_y() + base), q.hi_y));
  m = MaskAnd(m, CmpLE(q.lo_z, LoadUnaligned(slab.hi_z() + base)));
  m = MaskAnd(m, CmpLE(LoadUnaligned(slab.lo_z() + base), q.hi_z));
  return simd::MoveMask(m);
}

/// Appends base+lane for every set bit, ascending — the same visit order as
/// the scalar loop, one ctz per hit instead of one branch per candidate.
inline void EmitMask(uint32_t mask, size_t base, std::vector<uint32_t>& hits) {
  while (mask != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
    hits.push_back(static_cast<uint32_t>(base + lane));
    mask &= mask - 1;
  }
}

#endif  // TOUCH_SIMD_TU_LEVEL > 0

// --- CollectOverlaps ---------------------------------------------------------

#if TOUCH_SIMD_TU_LEVEL > 0

size_t CollectImpl(const BoxSlab& slab, size_t begin, size_t end,
                   const Box& query, std::vector<uint32_t>& hits) {
  const QueryVecs q = BroadcastQuery(query);
  for (size_t base = begin; base < end; base += simd::kWidth) {
    const uint32_t mask = ChunkMask(slab, base, q) & ValidMask(base, end);
    EmitMask(mask, base, hits);
  }
  return end - begin;
}

#else

size_t CollectImpl(const BoxSlab& slab, size_t begin, size_t end,
                   const Box& query, std::vector<uint32_t>& hits) {
  for (size_t i = begin; i < end; ++i) {
    if (SlabOverlapScalar(slab, i, query)) {
      hits.push_back(static_cast<uint32_t>(i));
    }
  }
  return end - begin;
}

#endif

// --- CollectOverlapsUntilBeyondX ---------------------------------------------

#if TOUCH_SIMD_TU_LEVEL > 0

size_t SweepImpl(const BoxSlab& slab, size_t begin, size_t end,
                 const Box& query, std::vector<uint32_t>& hits) {
  const QueryVecs q = BroadcastQuery(query);
  size_t examined = 0;
  for (size_t base = begin; base < end; base += simd::kWidth) {
    const uint32_t valid = ValidMask(base, end);
    // A lane "precedes" when NOT (lo_x > query.hi.x) — the inverted form of
    // the scalar break predicate, so NaN bounds land on the same side. With
    // the range sorted by lo_x the precede set is a prefix; its popcount is
    // exactly the scalar examined-before-break count.
    const uint32_t precede =
        ~simd::MoveMask(simd::CmpGT(simd::LoadUnaligned(slab.lo_x() + base),
                                    q.hi_x)) &
        valid;
    examined += static_cast<size_t>(std::popcount(precede));
    EmitMask(ChunkMask(slab, base, q) & precede, base, hits);
    if (precede != valid) break;
  }
  return examined;
}

#else

size_t SweepImpl(const BoxSlab& slab, size_t begin, size_t end,
                 const Box& query, std::vector<uint32_t>& hits) {
  size_t examined = 0;
  for (size_t i = begin; i < end; ++i) {
    if (slab.lo_x()[i] > query.hi.x) break;
    ++examined;
    if (SlabOverlapScalar(slab, i, query)) {
      hits.push_back(static_cast<uint32_t>(i));
    }
  }
  return examined;
}

#endif

// --- ClassifyOverlaps --------------------------------------------------------

#if TOUCH_SIMD_TU_LEVEL > 0

int ClassifyImpl(const BoxSlab& slab, size_t begin, size_t end,
                 const Box& query, size_t* first, uint64_t* examined) {
  const QueryVecs q = BroadcastQuery(query);
  int found = 0;
  size_t scanned_end = end;
  for (size_t base = begin; base < end && found < 2; base += simd::kWidth) {
    uint32_t mask = ChunkMask(slab, base, q) & ValidMask(base, end);
    while (mask != 0) {
      const size_t idx = base + static_cast<unsigned>(std::countr_zero(mask));
      mask &= mask - 1;
      if (found == 0) {
        *first = idx;
        found = 1;
      } else {
        // Scalar stops examining at the second hit.
        found = 2;
        scanned_end = idx + 1;
        break;
      }
    }
  }
  *examined += found == 2 ? scanned_end - begin : end - begin;
  return found;
}

#else

int ClassifyImpl(const BoxSlab& slab, size_t begin, size_t end,
                 const Box& query, size_t* first, uint64_t* examined) {
  int found = 0;
  for (size_t i = begin; i < end; ++i) {
    ++*examined;
    if (SlabOverlapScalar(slab, i, query)) {
      if (found == 1) return 2;
      *first = i;
      found = 1;
    }
  }
  return found;
}

#endif

// --- CollectOverlapsGather ---------------------------------------------------

#if TOUCH_SIMD_TU_LEVEL == 3

size_t GatherImpl(const BoxSlab& slab, std::span<const uint32_t> positions,
                  const Box& query, std::vector<uint32_t>& hits) {
  // AVX2 has a real vector gather; on SSE2/NEON a manual gather is slower
  // than the scalar loop, so only this level batches the indexed case.
  const QueryVecs q = BroadcastQuery(query);
  const size_t n = positions.size();
  size_t i = 0;
  for (; i + simd::kWidth <= n; i += simd::kWidth) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(positions.data() + i));
    __m256 m = _mm256_cmp_ps(
        q.lo_x, _mm256_i32gather_ps(slab.hi_x(), idx, 4), _CMP_LE_OQ);
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(_mm256_i32gather_ps(slab.lo_x(), idx, 4), q.hi_x,
                         _CMP_LE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(q.lo_y, _mm256_i32gather_ps(slab.hi_y(), idx, 4),
                         _CMP_LE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(_mm256_i32gather_ps(slab.lo_y(), idx, 4), q.hi_y,
                         _CMP_LE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(q.lo_z, _mm256_i32gather_ps(slab.hi_z(), idx, 4),
                         _CMP_LE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(_mm256_i32gather_ps(slab.lo_z(), idx, 4), q.hi_z,
                         _CMP_LE_OQ));
    uint32_t mask = static_cast<uint32_t>(_mm256_movemask_ps(m));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
      hits.push_back(positions[i + lane]);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (SlabOverlapScalar(slab, positions[i], query)) {
      hits.push_back(positions[i]);
    }
  }
  return n;
}

#else

size_t GatherImpl(const BoxSlab& slab, std::span<const uint32_t> positions,
                  const Box& query, std::vector<uint32_t>& hits) {
  for (const uint32_t pos : positions) {
    if (SlabOverlapScalar(slab, pos, query)) hits.push_back(pos);
  }
  return positions.size();
}

#endif

// --- BatchedTreeProbe --------------------------------------------------------

// One body for every level: the DFS and emit logic are ISA-independent, only
// the CollectImpl it drives is per-TU. Compiled per ISA so the hot probe
// loop inlines its own level's kernel with that level's flags.
uint64_t ProbeImpl(const RTree& tree, const RTreeProbeSlabs& slabs,
                   std::span<const Box> queries, float probe_epsilon,
                   bool swap_emit, JoinStats* stats, ResultCollector& out,
                   CancellationToken cancel) {
  const std::span<const RTree::Node> nodes = tree.nodes();
  const std::span<const uint32_t> child_ids = tree.child_ids();
  const std::span<const uint32_t> item_ids = tree.item_ids();
  std::vector<uint32_t> stack;
  std::vector<uint32_t> hits;
  uint64_t probed = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    if ((q & 1023u) == 0 && cancel.stop_requested()) break;
    if (!tree.empty()) {
      const Box query = probe_epsilon > 0.0f
                            ? queries[q].Enlarged(probe_epsilon)
                            : queries[q];
      const uint32_t query_id = static_cast<uint32_t>(q);
      stack.clear();
      stack.push_back(tree.root());
      while (!stack.empty()) {
        const RTree::Node& node = nodes[stack.back()];
        stack.pop_back();
        const size_t begin = node.begin;
        const size_t end = begin + node.count;
        hits.clear();
        if (node.IsLeaf()) {
          stats->comparisons +=
              CollectImpl(slabs.items, begin, end, query, hits);
          for (const uint32_t pos : hits) {
            const uint32_t item = item_ids[pos];
            if (swap_emit) {
              out.Emit(query_id, item);
            } else {
              out.Emit(item, query_id);
            }
            ++stats->results;
          }
        } else {
          stats->node_comparisons +=
              CollectImpl(slabs.child_mbrs, begin, end, query, hits);
          // Push matching children reversed so they pop in ascending order —
          // the DFS emit order of RTree::Query's recursion.
          for (size_t i = hits.size(); i-- > 0;) {
            stack.push_back(child_ids[hits[i]]);
          }
        }
      }
    }
    ++probed;
  }
  return probed;
}

}  // namespace

namespace internal {

const OverlapKernelTable& TOUCH_SIMD_TU_TABLE() {
  static constexpr OverlapKernelTable table = {
      static_cast<simd::Level>(TOUCH_SIMD_TU_LEVEL),
#if TOUCH_SIMD_TU_LEVEL > 0
      simd::kWidth,
#else
      1,
#endif
      &CollectImpl,
      &SweepImpl,
      &ClassifyImpl,
      &GatherImpl,
      &ProbeImpl,
  };
  return table;
}

}  // namespace internal
}  // namespace touch

#endif  // TOUCH_CORE_OVERLAP_KERNEL_IMPL_H_
