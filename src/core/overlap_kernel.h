#ifndef TOUCH_CORE_OVERLAP_KERNEL_H_
#define TOUCH_CORE_OVERLAP_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geom/box.h"
#include "index/rtree.h"
#include "join/algorithm.h"
#include "util/cancellation.h"
#include "util/simd.h"
#include "util/stats.h"

namespace touch {

/// Batched epsilon-overlap kernels: the one instruction every join in this
/// repo bottlenecks on — `Intersects(enlarged_box, candidate)` — restructured
/// so 4–8 candidates are tested per SIMD instruction instead of one per
/// branchy scalar call.
///
/// The shape is always the same: candidates are gathered once into a BoxSlab
/// (structure-of-arrays: six 64-byte-aligned coordinate arrays in one arena
/// allocation, epsilon folded in at store time), and a query box is tested
/// against a contiguous slab range with branch-free mask extraction. Every
/// kernel has a scalar reference twin (`...Scalar`) with identical
/// semantics; tests/overlap_kernel_test.cc holds every runtime-available
/// level to bit-identical results against the scalar twins within one
/// binary.
///
/// Dispatch is at RUNTIME: the entry points below forward through the
/// active OverlapKernelTable, selected at first use from cpuid feature
/// detection (widest supported ISA wins) or forced narrower via
/// ForceSimdLevel / the TOUCH_SIMD_LEVEL environment variable / the CLI's
/// --simd= flag. One shipped binary carries every ISA its architecture can
/// express; per-ISA code lives in overlap_kernel_{scalar,sse2,avx2,neon}.cc
/// (each a thin wrapper around overlap_kernel_impl.h compiled with that
/// ISA's flags).
///
/// Contract shared by all kernels:
///  - hit indices are appended in ascending order (so consumers that used
///    to emit from an ascending scalar loop keep their emit order);
///  - comparison counts returned/accumulated are *scalar-identical*: the
///    number of candidates the reference loop would have examined,
///    including its early exits — never the number of SIMD lanes touched —
///    so JoinStats stays byte-comparable across forced dispatch levels
///    within one process (and across machines with different ISAs);
///  - padded tail lanes are masked off structurally (not just by sentinel
///    coordinates), so even a query box spanning ±infinity cannot produce
///    phantom hits.

/// Structure-of-arrays slab of candidate boxes. Arrays are 64-byte-aligned,
/// live in one reusable arena allocation, and are padded to the SIMD chunk
/// size with never-overlapping sentinel boxes (lo=+inf, hi=-inf). Assigning
/// with an epsilon stores the Minkowski-enlarged coordinates (`lo - eps`,
/// `hi + eps` — the exact float ops of Box::Enlarged), which is how a
/// distance join's enlargement is paid once per slab build instead of once
/// per comparison.
class BoxSlab {
 public:
  /// Arrays are padded to a multiple of this many floats (covers the widest
  /// SIMD level and keeps every array 64-byte aligned).
  static constexpr size_t kPad = 16;

  /// slab[i] = boxes[i], enlarged by epsilon.
  void Assign(std::span<const Box> boxes, float epsilon = 0.0f) {
    AssignGenerated(
        boxes.size(), [boxes](size_t i) { return boxes[i]; }, epsilon);
  }

  /// slab[i] = boxes[ids[i]], enlarged by epsilon (candidate gather).
  void AssignGather(std::span<const Box> boxes, std::span<const uint32_t> ids,
                    float epsilon = 0.0f) {
    AssignGenerated(
        ids.size(), [boxes, ids](size_t i) { return boxes[ids[i]]; }, epsilon);
  }

  /// slab[i] = fn(i) for i in [0, count): the generic builder behind the
  /// tree-MBR slabs (slab[i] = nodes[child_ids[i]].mbr and friends).
  template <typename BoxFn>
  void AssignGenerated(size_t count, BoxFn&& fn, float epsilon = 0.0f) {
    Resize(count);
    if (epsilon == 0.0f) {
      // Store the raw coordinates, not `x ± 0.0f` — adding a zero flips the
      // sign of -0.0f and would break bit-exact round-trips against the
      // scalar paths, which use the un-enlarged boxes directly.
      for (size_t i = 0; i < count; ++i) {
        const Box box = fn(i);
        lo_x_[i] = box.lo.x;
        lo_y_[i] = box.lo.y;
        lo_z_[i] = box.lo.z;
        hi_x_[i] = box.hi.x;
        hi_y_[i] = box.hi.y;
        hi_z_[i] = box.hi.z;
      }
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      const Box box = fn(i);
      lo_x_[i] = box.lo.x - epsilon;
      lo_y_[i] = box.lo.y - epsilon;
      lo_z_[i] = box.lo.z - epsilon;
      hi_x_[i] = box.hi.x + epsilon;
      hi_y_[i] = box.hi.y + epsilon;
      hi_z_[i] = box.hi.z + epsilon;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Exact reconstruction of the stored (epsilon-enlarged) box: the floats
  /// round-trip bit-identically, so ReferencePoint() and sweep-order
  /// comparisons computed from a slab match the scalar path.
  Box BoxAt(size_t i) const {
    return Box(Vec3(lo_x_[i], lo_y_[i], lo_z_[i]),
               Vec3(hi_x_[i], hi_y_[i], hi_z_[i]));
  }

  const float* lo_x() const { return lo_x_; }
  const float* lo_y() const { return lo_y_; }
  const float* lo_z() const { return lo_z_; }
  const float* hi_x() const { return hi_x_; }
  const float* hi_y() const { return hi_y_; }
  const float* hi_z() const { return hi_z_; }

  /// Bytes held by the arena (capacity-based, deterministic in the sequence
  /// of Assign sizes — see AlignedArena).
  size_t MemoryUsageBytes() const { return arena_.MemoryUsageBytes(); }

 private:
  void Resize(size_t count) {
    size_ = count;
    // Pad so the last real element's chunk can always be loaded in full:
    // a W-lane load starting at index size-1 stays inside the arrays.
    stride_ = (count + kPad + kPad - 1) & ~(kPad - 1);
    float* base = arena_.Reserve(6 * stride_);
    lo_x_ = base;
    hi_x_ = base + stride_;
    lo_y_ = base + 2 * stride_;
    hi_y_ = base + 3 * stride_;
    lo_z_ = base + 4 * stride_;
    hi_z_ = base + 5 * stride_;
    constexpr float kInf = std::numeric_limits<float>::infinity();
    for (size_t i = count; i < stride_; ++i) {
      lo_x_[i] = kInf;
      lo_y_[i] = kInf;
      lo_z_[i] = kInf;
      hi_x_[i] = -kInf;
      hi_y_[i] = -kInf;
      hi_z_[i] = -kInf;
    }
  }

  simd::AlignedArena arena_;
  float* lo_x_ = nullptr;
  float* hi_x_ = nullptr;
  float* lo_y_ = nullptr;
  float* hi_y_ = nullptr;
  float* lo_z_ = nullptr;
  float* hi_z_ = nullptr;
  size_t size_ = 0;
  size_t stride_ = 0;
};

/// Scalar reference for one slab element — THE overlap semantics (closed
/// boxes, NaN never matches) the SIMD paths are held to.
inline bool SlabOverlapScalar(const BoxSlab& slab, size_t i, const Box& q) {
  return q.lo.x <= slab.hi_x()[i] && slab.lo_x()[i] <= q.hi.x &&
         q.lo.y <= slab.hi_y()[i] && slab.lo_y()[i] <= q.hi.y &&
         q.lo.z <= slab.hi_z()[i] && slab.lo_z()[i] <= q.hi.z;
}

/// Appends the ascending slab indices in [begin, end) whose boxes overlap
/// `query` to `hits` (not cleared). Returns the number of candidates
/// examined (== end - begin), the consumer's `comparisons` increment.
size_t CollectOverlaps(const BoxSlab& slab, size_t begin, size_t end,
                       const Box& query, std::vector<uint32_t>& hits);
size_t CollectOverlapsScalar(const BoxSlab& slab, size_t begin, size_t end,
                             const Box& query, std::vector<uint32_t>& hits);

/// Plane-sweep inner loop: the slab range must be sorted ascending by lo_x.
/// Scans from `begin`, stopping at the first candidate whose lo_x exceeds
/// query.hi.x; appends overlapping indices. Returns the number of
/// candidates with lo_x <= query.hi.x — exactly the comparisons the scalar
/// sweep counts before its break.
size_t CollectOverlapsUntilBeyondX(const BoxSlab& slab, size_t begin,
                                   size_t end, const Box& query,
                                   std::vector<uint32_t>& hits);
size_t CollectOverlapsUntilBeyondXScalar(const BoxSlab& slab, size_t begin,
                                         size_t end, const Box& query,
                                         std::vector<uint32_t>& hits);

/// TOUCH-assignment classifier: how many boxes in [begin, end) overlap
/// `query` — 0, 1 (with *first = its slab index), or 2 meaning "two or
/// more" (with *first = the first hit; the scan stops at the second hit,
/// like Algorithm 3's descent). *examined accumulates the scalar-identical
/// candidate count: end - begin when fewer than two hits, or the position
/// one past the second hit.
int ClassifyOverlaps(const BoxSlab& slab, size_t begin, size_t end,
                     const Box& query, size_t* first, uint64_t* examined);
int ClassifyOverlapsScalar(const BoxSlab& slab, size_t begin, size_t end,
                           const Box& query, size_t* first,
                           uint64_t* examined);

/// Gather variant for the TOUCH grid local join: candidates are the slab
/// positions listed in `positions` (a cell's occupants, any order). Appends
/// the *positions values* that overlap, in list order. Returns
/// positions.size() (every occupant is one comparison, as in the scalar
/// cell loop).
size_t CollectOverlapsGather(const BoxSlab& slab,
                             std::span<const uint32_t> positions,
                             const Box& query, std::vector<uint32_t>& hits);
size_t CollectOverlapsGatherScalar(const BoxSlab& slab,
                                   std::span<const uint32_t> positions,
                                   const Box& query,
                                   std::vector<uint32_t>& hits);

/// Slabs mirroring a bulk-loaded RTree's arena layout: `items[i]` is the
/// box of tree.item_ids()[i] (so every leaf's objects are one contiguous
/// slab range) and `child_mbrs[i]` is the MBR of tree.child_ids()[i] (one
/// contiguous range per inner node). Build once per tree, probe many times.
struct RTreeProbeSlabs {
  BoxSlab items;
  BoxSlab child_mbrs;

  /// `boxes` must be the span the tree indexes. `epsilon` enlarges the
  /// stored item/MBR coordinates (build-side enlargement of a distance
  /// join); probe-side enlargement is BatchedTreeProbe's probe_epsilon.
  void Build(const RTree& tree, std::span<const Box> boxes,
             float epsilon = 0.0f);

  size_t MemoryUsageBytes() const {
    return items.MemoryUsageBytes() + child_mbrs.MemoryUsageBytes();
  }
};

/// The INL probe kernel: probes every query box (enlarged on the fly by
/// probe_epsilon when > 0) through the tree using the slabs, emitting
/// (item_id, query_id) — or (query_id, item_id) when swap_emit — into `out`
/// in the exact DFS order of RTree::Query. Counts object tests in
/// stats->comparisons, node tests in stats->node_comparisons, and emitted
/// pairs in stats->results. Polls `cancel` at an amortized power-of-two
/// stride of queries. Returns the number of queries fully probed.
uint64_t BatchedTreeProbe(const RTree& tree, const RTreeProbeSlabs& slabs,
                          std::span<const Box> queries, float probe_epsilon,
                          bool swap_emit, JoinStats* stats,
                          ResultCollector& out,
                          CancellationToken cancel = {});

/// Below this many candidate ids the header-template local joins keep their
/// scalar loops: a slab build costs one pass over the candidates, which
/// only amortizes when the join examines them more than a few times.
inline constexpr size_t kBatchedLocalJoinMinIds = 16;

/// Per-thread scratch (slabs + hit buffer) reused by the local-join
/// templates in join/local_join.h, so per-cell slab builds allocate nothing
/// once warm. Never shared across threads.
struct OverlapScratch {
  BoxSlab slab_a;
  BoxSlab slab_b;
  std::vector<uint32_t> hits;
};
OverlapScratch& ThreadLocalOverlapScratch();

// --- Runtime dispatch seam ---------------------------------------------------

/// One per-ISA kernel set. Each per-ISA translation unit exports exactly
/// one immutable table; the dispatcher installs a pointer to the active one
/// and the entry points above forward through it. Tables are static-storage
/// constants, so a stale pointer read during a concurrent ForceSimdLevel is
/// still a valid (just previously-selected) kernel set.
struct OverlapKernelTable {
  simd::Level level;
  int width;  // float lanes per batch (simd::LevelWidth(level))
  size_t (*collect)(const BoxSlab&, size_t, size_t, const Box&,
                    std::vector<uint32_t>&);
  size_t (*sweep)(const BoxSlab&, size_t, size_t, const Box&,
                  std::vector<uint32_t>&);
  int (*classify)(const BoxSlab&, size_t, size_t, const Box&, size_t*,
                  uint64_t*);
  size_t (*gather)(const BoxSlab&, std::span<const uint32_t>, const Box&,
                   std::vector<uint32_t>&);
  uint64_t (*tree_probe)(const RTree&, const RTreeProbeSlabs&,
                         std::span<const Box>, float, bool, JoinStats*,
                         ResultCollector&, CancellationToken);
};

namespace internal {
/// Per-ISA table getters, defined by the matching kernel TU. Only the
/// architecture's own getters exist (x86: scalar/sse2/avx2; ARM:
/// scalar/neon) — the dispatcher references them behind the same
/// architecture guards as simd::LevelCompiledIn.
const OverlapKernelTable& KernelTableScalar();
const OverlapKernelTable& KernelTableSse2();
const OverlapKernelTable& KernelTableAvx2();
const OverlapKernelTable& KernelTableNeon();
}  // namespace internal

/// The active kernel table. First use resolves it: TOUCH_SIMD_LEVEL in the
/// environment (if set and not "auto") wins — an impossible request (level
/// not compiled in, or CPU lacks it) prints a clear diagnostic and
/// terminates the process, so a forced CI leg can never silently run a
/// different ISA — otherwise the widest cpuid-supported level is installed.
const OverlapKernelTable& ActiveKernels();

/// The resolved dispatch level (== ActiveKernels().level).
simd::Level ActiveSimdLevel();

/// Forces the dispatch level for this process (the seam behind --simd= and
/// the cross-level differential tests, which iterate
/// simd::RuntimeAvailableLevels() and compare results at each). Fails —
/// returning false and, when `error` is non-null, a message naming the
/// detected CPU features and the levels this binary can actually run —
/// when the level is not compiled in or the CPU lacks it; the active level
/// is unchanged on failure. Thread-safe; in-flight kernels finish on the
/// table they started with.
bool ForceSimdLevel(simd::Level level, std::string* error = nullptr);

/// True when the active level came from an override (TOUCH_SIMD_LEVEL or
/// ForceSimdLevel) rather than auto-detection. --explain reports it.
bool SimdLevelForced();

/// The *resolved* SIMD level name ("avx2", "sse2", "neon", "scalar") and
/// its float lane count (1 for scalar): what the dispatched kernels
/// actually run right now. The CLI's --explain report and the kernel
/// microbenches record these.
const char* SimdLevelName();
int SimdWidth();
/// False when dispatch resolved to the scalar reference path (no supported
/// vector ISA, or scalar was forced).
bool SimdEnabled();

}  // namespace touch

#endif  // TOUCH_CORE_OVERLAP_KERNEL_H_
