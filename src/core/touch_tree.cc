#include "core/touch_tree.h"

#include <algorithm>

#include "index/str.h"
#include "util/memory.h"

namespace touch {

TouchTree::TouchTree(std::span<const Box> boxes, size_t leaf_capacity,
                     size_t fanout) {
  leaf_capacity = std::max<size_t>(1, leaf_capacity);
  fanout = std::max<size_t>(2, fanout);
  if (boxes.empty()) return;

  // Phase 1a: STR-pack the objects into leaf buckets (paper section 5.1).
  const StrPartitioning leaves = StrPartition(boxes, leaf_capacity);
  num_leaves_ = leaves.NumBuckets();
  std::vector<uint32_t> current_level;
  current_level.reserve(num_leaves_);
  for (size_t bucket = 0; bucket < num_leaves_; ++bucket) {
    Node node;
    node.mbr = BucketMbr(boxes, leaves.Bucket(bucket));
    // Temporarily store the bucket range over leaves.order; the DFS pass
    // below rewrites these into final item ranges.
    node.item_begin = leaves.bucket_begin[bucket];
    node.item_end = leaves.bucket_begin[bucket + 1];
    node.level = 0;
    current_level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  height_ = 1;

  // Phase 1b: recursively summarize `fanout` nodes per parent, re-tiling each
  // level with STR over the node MBRs (Algorithm 2).
  while (current_level.size() > 1) {
    std::vector<Box> level_mbrs;
    level_mbrs.reserve(current_level.size());
    for (uint32_t id : current_level) level_mbrs.push_back(nodes_[id].mbr);

    const StrPartitioning packed = StrPartition(level_mbrs, fanout);
    std::vector<uint32_t> next_level;
    next_level.reserve(packed.NumBuckets());
    for (size_t bucket = 0; bucket < packed.NumBuckets(); ++bucket) {
      Node node;
      node.mbr = Box::Empty();
      node.children_begin = static_cast<uint32_t>(child_ids_.size());
      node.children_count = static_cast<uint32_t>(packed.Bucket(bucket).size());
      node.level = static_cast<uint8_t>(height_);
      for (uint32_t local : packed.Bucket(bucket)) {
        const uint32_t child = current_level[local];
        child_ids_.push_back(child);
        node.mbr.ExpandToContain(nodes_[child].mbr);
      }
      next_level.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    current_level = std::move(next_level);
    ++height_;
  }
  root_ = current_level.front();

  // Phase 1c: DFS renumbering — emit leaf items in DFS order so that every
  // node's descendant objects are contiguous in item_ids_.
  item_ids_.reserve(boxes.size());
  // Iterative DFS with explicit item-range bookkeeping: record the position
  // before visiting a subtree, set the range after.
  struct Frame {
    uint32_t node;
    uint32_t next_child = 0;
    uint32_t start = 0;
  };
  std::vector<Frame> frames;
  frames.push_back(
      Frame{root_, 0, static_cast<uint32_t>(item_ids_.size())});
  while (!frames.empty()) {
    Frame& frame = frames.back();
    Node& node = nodes_[frame.node];
    if (node.IsLeaf()) {
      const uint32_t start = static_cast<uint32_t>(item_ids_.size());
      for (uint32_t i = node.item_begin; i < node.item_end; ++i) {
        item_ids_.push_back(leaves.order[i]);
      }
      node.item_begin = start;
      node.item_end = static_cast<uint32_t>(item_ids_.size());
      frames.pop_back();
      continue;
    }
    if (frame.next_child < node.children_count) {
      const uint32_t child =
          child_ids_[node.children_begin + frame.next_child];
      ++frame.next_child;
      frames.push_back(
          Frame{child, 0, static_cast<uint32_t>(item_ids_.size())});
      continue;
    }
    node.item_begin = frame.start;
    node.item_end = static_cast<uint32_t>(item_ids_.size());
    frames.pop_back();
  }
}

TouchTree TouchTree::FromRTree(const RTree& index) {
  TouchTree tree;
  if (index.empty()) return tree;

  // One DFS over the R-tree: nodes and child ranges are emitted parent-
  // before-children, items in leaf-visit order, so every node's descendant
  // items are contiguous — exactly the layout the STR constructor produces.
  struct Frame {
    uint32_t source;  // node id in `index`
    uint32_t target;  // node id in `tree`
    uint32_t next_child = 0;
  };
  tree.item_ids_.reserve(index.size());
  tree.nodes_.reserve(index.nodes().size());

  const auto make_node = [&](uint32_t source) {
    const RTree::Node& src = index.nodes()[source];
    Node node;
    node.mbr = src.mbr;
    node.level = src.level;
    node.item_begin = static_cast<uint32_t>(tree.item_ids_.size());
    if (src.IsLeaf()) {
      ++tree.num_leaves_;
      for (uint32_t i = src.begin; i < src.begin + src.count; ++i) {
        tree.item_ids_.push_back(index.item_ids()[i]);
      }
      node.item_end = static_cast<uint32_t>(tree.item_ids_.size());
    } else {
      node.children_begin = static_cast<uint32_t>(tree.child_ids_.size());
      node.children_count = src.count;
      tree.child_ids_.resize(tree.child_ids_.size() + src.count);
    }
    tree.nodes_.push_back(node);
    return static_cast<uint32_t>(tree.nodes_.size() - 1);
  };

  std::vector<Frame> frames;
  tree.root_ = make_node(index.root());
  frames.push_back(Frame{index.root(), tree.root_});
  while (!frames.empty()) {
    Frame& frame = frames.back();
    const RTree::Node& src = index.nodes()[frame.source];
    if (src.IsLeaf() || frame.next_child == src.count) {
      tree.nodes_[frame.target].item_end =
          static_cast<uint32_t>(tree.item_ids_.size());
      frames.pop_back();
      continue;
    }
    const uint32_t source_child =
        index.child_ids()[src.begin + frame.next_child];
    const uint32_t slot =
        tree.nodes_[frame.target].children_begin + frame.next_child;
    ++frame.next_child;
    const uint32_t target_child = make_node(source_child);
    tree.child_ids_[slot] = target_child;
    frames.push_back(Frame{source_child, target_child});
  }
  tree.height_ = index.height();
  return tree;
}

size_t TouchTree::MemoryUsageBytes() const {
  return VectorBytes(nodes_) + VectorBytes(child_ids_) + VectorBytes(item_ids_);
}

}  // namespace touch
