#include "core/partitioned.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "util/memory.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace touch {
namespace {

// The slab axis is the longest axis of the joint extent.
int LongestAxis(const Box& domain) {
  const Vec3 e = domain.Extent();
  if (e.x >= e.y && e.x >= e.z) return 0;
  if (e.y >= e.z) return 1;
  return 2;
}

// Emits into the shared output under a lock (slabs may run concurrently) and
// translates slab-local ids back to global ids. Pairs spanning a slab
// boundary are reported by every slab both objects were assigned to, so the
// 1D reference-point rule keeps exactly one copy: only the slab containing
// max(a.lo, b.lo) on the slab axis reports the pair.
class SlabCollector : public ResultCollector {
 public:
  SlabCollector(std::span<const Box> a, std::span<const Box> b, int axis,
                float origin, float inv_width, int slab, int max_slab,
                const std::vector<uint32_t>& a_ids,
                const std::vector<uint32_t>& b_ids, Mutex* mutex,
                ResultCollector* out)
      : a_(a), b_(b), axis_(axis), origin_(origin), inv_width_(inv_width),
        slab_(slab), max_slab_(max_slab), a_ids_(a_ids), b_ids_(b_ids),
        mutex_(mutex), out_(out) {}

  void Emit(uint32_t local_a, uint32_t local_b) override {
    const uint32_t global_a = a_ids_[local_a];
    const uint32_t global_b = b_ids_[local_b];
    const float ref =
        std::max(a_[global_a].lo[axis_], b_[global_b].lo[axis_]);
    const int home = std::clamp(
        static_cast<int>(std::floor((ref - origin_) * inv_width_)), 0,
        max_slab_);
    if (home != slab_) return;
    ++emitted_;
    const MutexLock lock(*mutex_);
    out_->Emit(global_a, global_b);
  }

  uint64_t emitted() const { return emitted_; }

 private:
  std::span<const Box> a_;
  std::span<const Box> b_;
  const int axis_;
  const float origin_;
  const float inv_width_;
  const int slab_;
  const int max_slab_;
  const std::vector<uint32_t>& a_ids_;
  const std::vector<uint32_t>& b_ids_;
  Mutex* mutex_;
  ResultCollector* out_;
  uint64_t emitted_ = 0;
};

}  // namespace

JoinStats PartitionedJoin(
    const std::function<std::unique_ptr<SpatialJoinAlgorithm>()>&
        make_algorithm,
    std::span<const Box> a, std::span<const Box> b,
    const PartitionedOptions& options, ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }
  const int partitions = std::max(1, options.partitions);

  // Cut the joint extent into equi-width slabs along its longest axis and
  // assign each object to every slab it overlaps (the halo that keeps
  // cross-boundary pairs joinable).
  Timer phase;
  Box domain = Box::Empty();
  for (const Box& box : a) domain.ExpandToContain(box);
  for (const Box& box : b) domain.ExpandToContain(box);
  const int axis = LongestAxis(domain);
  const float origin = domain.lo[axis];
  const float extent = domain.hi[axis] - domain.lo[axis];
  const float inv_width =
      extent > 0 ? static_cast<float>(partitions) / extent : 0.0f;
  auto slab_range = [&](const Box& box) {
    const int lo = std::clamp(
        static_cast<int>(std::floor((box.lo[axis] - origin) * inv_width)), 0,
        partitions - 1);
    const int hi = std::clamp(
        static_cast<int>(std::floor((box.hi[axis] - origin) * inv_width)), lo,
        partitions - 1);
    return std::pair<int, int>(lo, hi);
  };

  std::vector<std::vector<uint32_t>> slab_a(partitions);
  std::vector<std::vector<uint32_t>> slab_b(partitions);
  for (uint32_t id = 0; id < a.size(); ++id) {
    const auto [lo, hi] = slab_range(a[id]);
    for (int s = lo; s <= hi; ++s) slab_a[s].push_back(id);
  }
  for (uint32_t id = 0; id < b.size(); ++id) {
    const auto [lo, hi] = slab_range(b[id]);
    for (int s = lo; s <= hi; ++s) slab_b[s].push_back(id);
  }
  stats.build_seconds = phase.Seconds();

  // Join each slab independently — the paper's per-core local join. Each
  // worker materializes its slab's boxes, joins them with a fresh algorithm
  // instance, and reports globally-unique pairs through SlabCollector.
  phase.Reset();
  Mutex out_mutex;
  Mutex stats_mutex;
  size_t max_slab_bytes = 0;
  std::vector<int> schedule(partitions);
  for (int s = 0; s < partitions; ++s) schedule[s] = s;

  std::atomic<size_t> next{0};
  auto worker = [&] {
    const std::unique_ptr<SpatialJoinAlgorithm> algorithm = make_algorithm();
    for (;;) {
      const size_t task = next.fetch_add(1);
      if (task >= schedule.size()) return;
      const int slab = schedule[task];
      if (slab_a[slab].empty() || slab_b[slab].empty()) continue;
      std::vector<Box> boxes_a;
      std::vector<Box> boxes_b;
      boxes_a.reserve(slab_a[slab].size());
      boxes_b.reserve(slab_b[slab].size());
      for (uint32_t id : slab_a[slab]) boxes_a.push_back(a[id]);
      for (uint32_t id : slab_b[slab]) boxes_b.push_back(b[id]);

      SlabCollector collector(a, b, axis, origin, inv_width, slab,
                              partitions - 1, slab_a[slab], slab_b[slab],
                              &out_mutex, &out);
      JoinStats slab_stats = algorithm->Join(boxes_a, boxes_b, collector);
      slab_stats.results = collector.emitted();

      const MutexLock lock(stats_mutex);
      stats.MergeCounters(slab_stats);
      max_slab_bytes =
          std::max(max_slab_bytes, slab_stats.memory_bytes +
                                       VectorBytes(boxes_a) +
                                       VectorBytes(boxes_b));
    }
  };

  const int threads = std::max(1, options.threads);
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  stats.join_seconds = phase.Seconds();

  stats.memory_bytes = max_slab_bytes + NestedVectorBytes(slab_a) +
                       NestedVectorBytes(slab_b);
  stats.total_seconds = total.Seconds();
  return stats;
}

JoinStats PartitionedDistanceJoin(
    const std::function<std::unique_ptr<SpatialJoinAlgorithm>()>&
        make_algorithm,
    std::span<const Box> a, std::span<const Box> b, float epsilon,
    const PartitionedOptions& options, ResultCollector& out) {
  Timer timer;
  std::vector<Box> enlarged;
  enlarged.reserve(a.size());
  for (const Box& box : a) enlarged.push_back(box.Enlarged(epsilon));
  const double enlarge_seconds = timer.Seconds();
  JoinStats stats = PartitionedJoin(make_algorithm, enlarged, b, options, out);
  stats.total_seconds += enlarge_seconds;
  return stats;
}

}  // namespace touch
