// Scalar kernel TU: TOUCH_SIMD_TU_LEVEL 0 compiles overlap_kernel_impl.h's
// reference loops — the semantics every vector level is differentially
// tested against. Always present on every architecture, and additionally
// re-exported below as the public `...Scalar` twins so tests can name the
// reference directly regardless of the active dispatch level.

#define TOUCH_SIMD_TU_LEVEL 0
#define TOUCH_SIMD_TU_TABLE KernelTableScalar
#include "core/overlap_kernel_impl.h"

namespace touch {

size_t CollectOverlapsScalar(const BoxSlab& slab, size_t begin, size_t end,
                             const Box& query, std::vector<uint32_t>& hits) {
  return CollectImpl(slab, begin, end, query, hits);
}

size_t CollectOverlapsUntilBeyondXScalar(const BoxSlab& slab, size_t begin,
                                         size_t end, const Box& query,
                                         std::vector<uint32_t>& hits) {
  return SweepImpl(slab, begin, end, query, hits);
}

int ClassifyOverlapsScalar(const BoxSlab& slab, size_t begin, size_t end,
                           const Box& query, size_t* first,
                           uint64_t* examined) {
  return ClassifyImpl(slab, begin, end, query, first, examined);
}

size_t CollectOverlapsGatherScalar(const BoxSlab& slab,
                                   std::span<const uint32_t> positions,
                                   const Box& query,
                                   std::vector<uint32_t>& hits) {
  return GatherImpl(slab, positions, query, hits);
}

}  // namespace touch
