#!/usr/bin/env python3
"""Checks intra-repo markdown links (CI's docs job; stdlib only).

Walks every tracked .md file, extracts inline links and images, and fails
when a relative link points at a file that does not exist or at a heading
anchor that no heading in the target file produces. External links
(http/https/mailto) are deliberately not fetched: CI must not depend on the
network, and the failure mode this guards against is repo refactors
breaking our own references.

Also validates:
  - ```mermaid fences: the fence must close, the first line must name a
    known diagram type, and graph/flowchart blocks must balance their
    subgraph/end pairs (the sanity layer under our architecture diagrams —
    a typo'd diagram renders as an error box on GitHub, silently).
  - Contents sections: in a file with a "## Contents" heading, every other
    H2 must be linked from that section, so the TOC cannot silently drift
    from the document it indexes.

Exit code 0 when everything resolves, 1 otherwise (one line per breakage).
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "build", "build-tsan", ".claude"}

# Inline [text](target) and ![alt](target); target ends at the first
# unescaped ')' (no nested parens in our docs).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")

# Diagram types mermaid actually parses; a fence starting with anything
# else renders as an error box on GitHub.
MERMAID_TYPES = (
    "graph", "flowchart", "sequenceDiagram", "stateDiagram-v2",
    "stateDiagram", "classDiagram", "erDiagram", "gantt", "pie",
    "journey", "mindmap", "timeline",
)


def markdown_files():
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def github_anchor(heading):
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to dashes (good enough for the ASCII headings we write)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        anchors = set()
        counts = {}
        in_fence = False
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                match = HEADING_RE.match(line)
                if not match:
                    continue
                slug = github_anchor(match.group(1))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_mermaid_block(rel, fence_lineno, block):
    """Sanity-checks one ```mermaid block's body lines."""
    errors = []
    body = [line.strip() for line in block if line.strip()]
    if not body:
        errors.append(f"{rel}:{fence_lineno}: empty mermaid block")
        return errors
    first = body[0]
    if not any(first == t or first.startswith(t + " ")
               for t in MERMAID_TYPES):
        errors.append(
            f"{rel}:{fence_lineno}: mermaid block starts with '{first}', "
            f"not a known diagram type")
        return errors
    if first.split()[0] in ("graph", "flowchart"):
        subgraphs = sum(1 for line in body if line.startswith("subgraph"))
        ends = sum(1 for line in body if line == "end")
        if subgraphs != ends:
            errors.append(
                f"{rel}:{fence_lineno}: mermaid block has {subgraphs} "
                f"'subgraph' but {ends} 'end'")
    return errors


def check_contents_section(rel, lines):
    """In a file with a '## Contents' heading, every other H2 must be
    linked (as a #anchor) from that section."""
    headings = []  # (lineno, slug) of H2s outside fences
    contents_start = None
    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = re.match(r"^##\s+(.*)$", line)
        if match:
            heading = match.group(1).strip()
            if heading.lower() == "contents":
                contents_start = lineno
            else:
                headings.append((lineno, github_anchor(heading)))
    if contents_start is None:
        return []
    # The Contents section runs until the next heading of any level —
    # fenced lines are neither section terminators nor link sources.
    linked = set()
    in_fence = False
    for line in lines[contents_start:]:
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        if HEADING_RE.match(line):
            break
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith("#"):
                linked.add(target[1:])
    errors = []
    for lineno, slug in headings:
        if slug not in linked:
            errors.append(
                f"{rel}:{lineno}: heading '#{slug}' missing from the "
                f"Contents section (line {contents_start})")
    return errors


def check_file(md_path):
    errors = []
    rel = os.path.relpath(md_path, REPO_ROOT)
    with open(md_path, encoding="utf-8") as handle:
        lines = handle.readlines()

    in_fence = False
    mermaid_start = None
    mermaid_block = []
    for lineno, line in enumerate(lines, 1):
        if CODE_FENCE_RE.match(line):
            if not in_fence and line.strip().lstrip("`~") == "mermaid":
                mermaid_start = lineno
                mermaid_block = []
            elif in_fence and mermaid_start is not None:
                errors.extend(
                    check_mermaid_block(rel, mermaid_start, mermaid_block))
                mermaid_start = None
            in_fence = not in_fence
            continue
        if in_fence:
            if mermaid_start is not None:
                mermaid_block.append(line)
            continue
        for match in LINK_RE.finditer(line):
                target = match.group(1)
                if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                    continue  # http:, https:, mailto:, ...
                path_part, _, anchor = target.partition("#")
                if path_part:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(md_path), path_part))
                else:
                    resolved = md_path  # same-file anchor
                if not os.path.exists(resolved):
                    errors.append(
                        f"{rel}:{lineno}: broken link '{target}' "
                        f"(no such file {os.path.relpath(resolved, REPO_ROOT)})")
                    continue
                if anchor and resolved.lower().endswith(".md"):
                    if anchor not in anchors_of(resolved):
                        errors.append(
                            f"{rel}:{lineno}: broken anchor '{target}' "
                            f"(no heading yields #{anchor})")
    if in_fence:
        errors.append(f"{rel}: unclosed code fence at end of file")
    errors.extend(check_contents_section(rel, lines))
    return errors


def main():
    all_errors = []
    checked = 0
    for md_path in markdown_files():
        checked += 1
        all_errors.extend(check_file(md_path))
    for error in all_errors:
        print(error)
    print(f"checked {checked} markdown files: "
          f"{'OK' if not all_errors else f'{len(all_errors)} broken link(s)'}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
