#!/usr/bin/env python3
"""Checks intra-repo markdown links (CI's docs job; stdlib only).

Walks every tracked .md file, extracts inline links and images, and fails
when a relative link points at a file that does not exist or at a heading
anchor that no heading in the target file produces. External links
(http/https/mailto) are deliberately not fetched: CI must not depend on the
network, and the failure mode this guards against is repo refactors
breaking our own references.

Exit code 0 when every link resolves, 1 otherwise (one line per breakage).
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "build", "build-tsan", ".claude"}

# Inline [text](target) and ![alt](target); target ends at the first
# unescaped ')' (no nested parens in our docs).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files():
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def github_anchor(heading):
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to dashes (good enough for the ASCII headings we write)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        anchors = set()
        counts = {}
        in_fence = False
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                match = HEADING_RE.match(line)
                if not match:
                    continue
                slug = github_anchor(match.group(1))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_file(md_path):
    errors = []
    in_fence = False
    with open(md_path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                    continue  # http:, https:, mailto:, ...
                path_part, _, anchor = target.partition("#")
                if path_part:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(md_path), path_part))
                else:
                    resolved = md_path  # same-file anchor
                rel = os.path.relpath(md_path, REPO_ROOT)
                if not os.path.exists(resolved):
                    errors.append(
                        f"{rel}:{lineno}: broken link '{target}' "
                        f"(no such file {os.path.relpath(resolved, REPO_ROOT)})")
                    continue
                if anchor and resolved.lower().endswith(".md"):
                    if anchor not in anchors_of(resolved):
                        errors.append(
                            f"{rel}:{lineno}: broken anchor '{target}' "
                            f"(no heading yields #{anchor})")
    return errors


def main():
    all_errors = []
    checked = 0
    for md_path in markdown_files():
        checked += 1
        all_errors.extend(check_file(md_path))
    for error in all_errors:
        print(error)
    print(f"checked {checked} markdown files: "
          f"{'OK' if not all_errors else f'{len(all_errors)} broken link(s)'}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
