#!/usr/bin/env python3
"""Convert Google Benchmark JSON output into the repo's bench-trajectory schema.

Usage:
    bench_to_json.py RESULTS.json [MORE.json ...] --out BENCH_pr.json

Reads one or more files produced with `--benchmark_format=json`, merges
them, normalizes every timing to milliseconds, and writes a compact
`touch-bench-v1` document:

    {
      "schema": "touch-bench-v1",
      "context": {"date": ..., "host": ..., "scale": ...},
      "benchmarks": {"engine_planner/uniform/auto_cold":
                     {"real_time_ms": 12.3, "cpu_time_ms": 11.9}, ...}
    }

This is what the bench-regression CI job uploads as its BENCH_pr.json
artifact and what tools/compare_bench.py consumes. Refreshing the checked-in
baseline is the same command pointed at bench/baseline.json (run the same
binaries with the same TOUCH_BENCH_SCALE the CI job uses).

Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
skipped; only plain iteration rows are recorded. Repeated iteration rows
for one name (from --benchmark_repetitions=N) are folded to their MINIMUM:
the fastest of N runs is the least noise-contaminated sample a shared CI
runner can produce, which is what makes a 25% regression gate hold with
single-iteration benchmarks. Run the benches with at least
--benchmark_repetitions=3 when producing gating documents.
"""

import argparse
import json
import os
import sys

_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def _to_ms(value, unit):
    try:
        return float(value) * _UNIT_TO_MS[unit]
    except KeyError:
        raise SystemExit(f"unknown time_unit '{unit}' in benchmark output")


def convert(paths):
    benchmarks = {}
    context = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        if not context and "context" in doc:
            raw = doc["context"]
            context = {
                "date": raw.get("date", ""),
                "host": raw.get("host_name", ""),
                "num_cpus": raw.get("num_cpus", 0),
                "build_type": raw.get("library_build_type", ""),
            }
        for row in doc.get("benchmarks", []):
            if row.get("run_type", "iteration") != "iteration":
                continue  # skip mean/median/stddev aggregates
            name = row["name"]
            unit = row.get("time_unit", "ns")
            sample = {
                "real_time_ms": round(_to_ms(row["real_time"], unit), 4),
                "cpu_time_ms": round(_to_ms(row["cpu_time"], unit), 4),
            }
            previous = benchmarks.get(name)
            if previous is None or sample["real_time_ms"] < \
                    previous["real_time_ms"]:
                # Repetitions fold to the minimum (least-noise sample).
                benchmarks[name] = sample
    scale = os.environ.get("TOUCH_BENCH_SCALE", "1")
    context["scale"] = scale
    return {
        "schema": "touch-bench-v1",
        "context": context,
        "benchmarks": benchmarks,
    }


def main():
    parser = argparse.ArgumentParser(
        description="Merge Google Benchmark JSON files into touch-bench-v1.")
    parser.add_argument("inputs", nargs="+",
                        help="files from --benchmark_format=json")
    parser.add_argument("--out", required=True, help="output path")
    args = parser.parse_args()

    doc = convert(args.inputs)
    if not doc["benchmarks"]:
        raise SystemExit("no iteration benchmarks found in the input files")
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(doc['benchmarks'])} benchmarks to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
