// Command-line driver for the TOUCH spatial-join library.
//
// Runs any algorithm of the library on generated or loaded datasets and
// prints a stats table, so the join can be exercised without writing code:
//
//   spatial_join_cli --algo=touch --dist=gaussian --na=100000 --epsilon=5
//   spatial_join_cli --algo=auto --a=axons.bin --b=dendrites.bin
//   spatial_join_cli --algo=pbsm-500,touch --a=axons.bin --b=dendrites.bin
//   spatial_join_cli --generate=clustered --count=50000 --out=data.bin
//
// Exit code 0 on success, 1 on bad usage or I/O failure.

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/overlap_kernel.h"
#include "core/partitioned.h"
#include "datagen/distributions.h"
#include "datagen/neuro.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "io/dataset_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/format.h"

namespace touch {
namespace {

struct CliOptions {
  std::vector<std::string> algorithms = {"touch"};
  std::string distribution = "uniform";
  /// Neuroscience workload: axons vs dendrites grown from this many neurons
  /// (0 = use the synthetic box distribution instead).
  int neuro_neurons = 0;
  size_t na = 100000;
  size_t nb = 200000;
  float epsilon = 5.0f;
  uint64_t seed = 42;
  std::string file_a;
  std::string file_b;
  // Generation mode.
  std::string generate;
  size_t count = 100000;
  std::string out_path;
  // Partitioned driver.
  int partitions = 0;
  int threads = 1;
  /// Engine index-cache cap for --algo=auto (0 = unbounded).
  size_t cache_bytes = 0;
  /// --algo=auto: ghost-list cache admission (artifacts retained only after
  /// their second build request).
  bool cache_admission = false;
  /// --algo=auto: cancel a request that exceeds this wall-clock budget
  /// (0 = no timeout). Set as JoinRequest::deadline, so the engine itself
  /// enforces it even if this process stopped waiting.
  int timeout_ms = 0;
  /// --algo=auto: shards per dataset; > 1 routes auto runs through the
  /// sharded scatter-gather engine.
  int shards = 1;
  /// --algo=auto: print histogram-based estimates vs measured actuals.
  bool explain = false;
  /// --algo=auto: after the first run, apply this many randomized mutation
  /// batches to dataset A, re-running the join after each and printing an
  /// order-independent result checksum (the sharded-vs-unsharded identity
  /// harness diffs these lines).
  int mutate_batches = 0;
  /// Mutations per batch (insert/delete/update mix).
  int mutate_ops = 64;
  /// Seed of the mutation stream (default: derived from --seed).
  uint64_t mutate_seed = 0;
  bool mutate_seed_set = false;
  /// Kernel dispatch level: "auto" (cpuid-widest) or a forced level name.
  std::string simd = "auto";
  /// --algo=auto: measured-run feedback calibrating the planner.
  bool calibration = true;
  /// Write a Chrome/Perfetto trace of the engine-run requests here.
  std::string trace_out;
  /// Write a Prometheus text-format metrics snapshot here.
  std::string metrics_out;
  bool csv = false;
  bool help = false;
};

constexpr auto Format = StrFormat;  // shared helper, see util/format.h

/// Parses a byte count with an optional k/m/g suffix ("64m" = 64 MiB).
/// Returns false on garbage, a bad suffix, negative input (strtoull would
/// silently wrap it), or a value that overflows size_t after the suffix.
bool ParseByteCount(const std::string& value, size_t* bytes) {
  if (value.empty() || !std::isdigit(static_cast<unsigned char>(value[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || errno == ERANGE) return false;
  int shift = 0;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      default: return false;
    }
    if (*(end + 1) != '\0') return false;
  }
  if (parsed > (std::numeric_limits<size_t>::max() >> shift)) return false;
  *bytes = static_cast<size_t>(parsed) << shift;
  return true;
}

void PrintUsage() {
  std::puts(
      "spatial_join_cli - run in-memory spatial joins (TOUCH, SIGMOD'13)\n"
      "\n"
      "Join mode (default):\n"
      "  --algo=NAME[,NAME...]  algorithms: nl ps pbsm-<res> s3 sssj inl\n"
      "                         rtree rtree-hilbert rtree-tgs rtree-guttman\n"
      "                         rtree-rstar rplus seeded octree nbps-<res>\n"
      "                         touch, 'all', or 'auto' (cost-based planner;\n"
      "                         prints the chosen plan) (default: touch)\n"
      "  --a=FILE --b=FILE      load datasets (.bin from --generate, or .csv)\n"
      "  --dist=NAME            uniform|gaussian|clustered (default uniform)\n"
      "  --neuro=N              neuroscience workload grown from N neurons\n"
      "                         (axons as A, dendrites as B; overrides --dist)\n"
      "  --na=N --nb=N          generated dataset sizes (default 100k/200k)\n"
      "  --epsilon=E            distance threshold (default 5)\n"
      "  --seed=S               RNG seed (default 42)\n"
      "  --partitions=P         run through the partitioned driver\n"
      "  --threads=T            worker threads for the partitioned driver\n"
      "  --cache-bytes=N[kmg]   cap the --algo=auto index cache (cost-aware\n"
      "                         eviction; default unbounded)\n"
      "  --cache-admission=on|off  only retain an index artifact after the\n"
      "                         second build request for its key (ghost-list\n"
      "                         admission; default off)\n"
      "  --timeout-ms=N         cancel an --algo=auto request that runs\n"
      "                         longer than N milliseconds (default: none);\n"
      "                         enforced by the engine as a request deadline\n"
      "  --shards=K             partition each dataset into K spatial shards\n"
      "                         and scatter-gather --algo=auto joins across\n"
      "                         shard pairs (default 1 = unsharded); with\n"
      "                         --explain, prints the per-shard-pair plans\n"
      "  --explain              after each --algo=auto run, print the plan's\n"
      "                         histogram-based estimates next to the\n"
      "                         measured actuals\n"
      "  --mutate=N             after the first --algo=auto run, apply N\n"
      "                         randomized insert/delete/update batches to\n"
      "                         dataset A, re-running the join after each and\n"
      "                         printing 'mutation batch i: ... checksum=...'\n"
      "                         (order-independent over result pairs, so\n"
      "                         --shards=1 and --shards=K lines must match)\n"
      "  --mutate-ops=K         mutations per batch (default 64)\n"
      "  --mutate-seed=S        mutation-stream seed (default: --seed + 1000)\n"
      "  --simd=LEVEL           kernel dispatch: auto|scalar|sse2|avx2|neon\n"
      "                         (default auto = widest cpuid-supported level;\n"
      "                         forcing a level this host cannot run is an\n"
      "                         error, never a silent fallback; equivalent\n"
      "                         env var: TOUCH_SIMD_LEVEL)\n"
      "  --calibration=on|off   measured-run feedback: cold runs train the\n"
      "                         planner's cost models, overriding its static\n"
      "                         rules (default on)\n"
      "  --trace-out=FILE       write a Chrome/Perfetto trace (JSON) of the\n"
      "                         engine-run requests; open in ui.perfetto.dev\n"
      "                         or summarize with tools/trace_summary.py\n"
      "  --metrics-out=FILE     write a Prometheus text-format snapshot of\n"
      "                         the engine/cache/pool metrics after the run\n"
      "  --csv                  machine-readable output\n"
      "\n"
      "Generate mode:\n"
      "  --generate=DIST --count=N --out=FILE[.csv]  write a dataset\n");
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (arg == "--csv") {
      options->csv = true;
    } else if (ParseFlag(arg, "algo", &value)) {
      options->algorithms.clear();
      std::stringstream stream(value);
      std::string name;
      while (std::getline(stream, name, ',')) {
        options->algorithms.push_back(name);
      }
    } else if (ParseFlag(arg, "dist", &value)) {
      options->distribution = value;
    } else if (ParseFlag(arg, "neuro", &value)) {
      options->neuro_neurons = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "na", &value)) {
      options->na = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "nb", &value)) {
      options->nb = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "epsilon", &value)) {
      options->epsilon = std::strtof(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "seed", &value)) {
      options->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "a", &value)) {
      options->file_a = value;
    } else if (ParseFlag(arg, "b", &value)) {
      options->file_b = value;
    } else if (ParseFlag(arg, "generate", &value)) {
      options->generate = value;
    } else if (ParseFlag(arg, "count", &value)) {
      options->count = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "out", &value)) {
      options->out_path = value;
    } else if (ParseFlag(arg, "partitions", &value)) {
      options->partitions = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      options->threads = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "cache-bytes", &value)) {
      if (!ParseByteCount(value, &options->cache_bytes)) {
        std::fprintf(stderr, "bad --cache-bytes value: %s\n", value.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "cache-admission", &value)) {
      if (value == "on" || value == "1") {
        options->cache_admission = true;
      } else if (value == "off" || value == "0") {
        options->cache_admission = false;
      } else {
        std::fprintf(stderr,
                     "bad --cache-admission value: %s (expected on|off)\n",
                     value.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "timeout-ms", &value)) {
      options->timeout_ms = std::atoi(value.c_str());
      if (options->timeout_ms <= 0) {
        std::fprintf(stderr, "bad --timeout-ms value: %s (expected > 0)\n",
                     value.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "shards", &value)) {
      options->shards = std::atoi(value.c_str());
      if (options->shards < 1) {
        std::fprintf(stderr, "bad --shards value: %s (expected >= 1)\n",
                     value.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "trace-out", &value)) {
      options->trace_out = value;
    } else if (ParseFlag(arg, "metrics-out", &value)) {
      options->metrics_out = value;
    } else if (ParseFlag(arg, "mutate", &value)) {
      options->mutate_batches = std::atoi(value.c_str());
      if (options->mutate_batches < 1) {
        std::fprintf(stderr, "bad --mutate value: %s (expected >= 1)\n",
                     value.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "mutate-ops", &value)) {
      options->mutate_ops = std::atoi(value.c_str());
      if (options->mutate_ops < 1) {
        std::fprintf(stderr, "bad --mutate-ops value: %s (expected >= 1)\n",
                     value.c_str());
        return false;
      }
    } else if (ParseFlag(arg, "mutate-seed", &value)) {
      options->mutate_seed = std::strtoull(value.c_str(), nullptr, 10);
      options->mutate_seed_set = true;
    } else if (arg == "--explain") {
      options->explain = true;
    } else if (ParseFlag(arg, "simd", &value)) {
      options->simd = value;
    } else if (ParseFlag(arg, "calibration", &value)) {
      if (value == "on" || value == "1") {
        options->calibration = true;
      } else if (value == "off" || value == "0") {
        options->calibration = false;
      } else {
        std::fprintf(stderr,
                     "bad --calibration value: %s (expected on|off)\n",
                     value.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int RunGenerate(const CliOptions& options) {
  Distribution distribution;
  if (!ParseDistribution(options.generate, &distribution)) {
    std::fprintf(stderr, "unknown distribution '%s'\n",
                 options.generate.c_str());
    return 1;
  }
  if (options.out_path.empty()) {
    std::fprintf(stderr, "--generate requires --out=FILE\n");
    return 1;
  }
  const Dataset boxes =
      GenerateSynthetic(distribution, options.count, options.seed);
  const IoStatus status = EndsWith(options.out_path, ".csv")
                              ? WriteBoxesCsv(options.out_path, boxes)
                              : WriteBoxesBinary(options.out_path, boxes);
  if (!status.ok) {
    std::fprintf(stderr, "%s\n", status.message.c_str());
    return 1;
  }
  std::printf("wrote %zu %s boxes to %s\n", boxes.size(),
              DistributionName(distribution), options.out_path.c_str());
  return 0;
}

bool LoadDataset(const std::string& path, Dataset* boxes) {
  const IoStatus status = EndsWith(path, ".csv")
                              ? ReadBoxesCsv(path, boxes)
                              : ReadBoxesBinary(path, boxes);
  if (!status.ok) std::fprintf(stderr, "%s\n", status.message.c_str());
  return status.ok;
}

/// SplitMix64 finalizer: hashes one (a, b) result pair.
uint64_t MixPair(uint32_t a, uint32_t b) {
  uint64_t x = (static_cast<uint64_t>(a) << 32) | b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-independent pair-set checksum: the sum of per-pair hashes is the
/// same whatever order shards (or plans) emit them in, so two runs over
/// the same logical dataset print identical checksum lines.
class ChecksumCollector : public ResultCollector {
 public:
  void Emit(uint32_t a, uint32_t b) override {
    ++count_;
    sum_ += MixPair(a, b);
  }
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

/// Deterministic mutation-stream generator for the CLI's --mutate loop. It
/// tracks dataset A's live ids client-side — id assignment is deterministic
/// (inserts take the next free id in stream order, sharded or not), so the
/// generator never needs to read ids back from the engine.
class MutationStream {
 public:
  MutationStream(uint64_t seed, const Dataset& initial, const Box& domain)
      : rng_(seed), domain_(domain) {
    live_.resize(initial.size());
    for (uint32_t i = 0; i < initial.size(); ++i) live_[i] = i;
    next_id_ = static_cast<uint32_t>(initial.size());
  }

  std::vector<Mutation> NextBatch(int ops) {
    std::vector<Mutation> batch;
    batch.reserve(ops);
    for (int k = 0; k < ops; ++k) {
      const double roll = Uniform(0.0, 1.0);
      if (live_.empty() || roll < 0.4) {
        batch.push_back(Mutation{MutationKind::kInsert, kInvalidObjectId,
                                 RandomBox()});
        live_.push_back(next_id_++);
      } else if (roll < 0.7) {
        const size_t pick = PickLive();
        batch.push_back(Mutation{MutationKind::kDelete, live_[pick], Box{}});
        live_[pick] = live_.back();
        live_.pop_back();
      } else {
        batch.push_back(
            Mutation{MutationKind::kUpdate, live_[PickLive()], RandomBox()});
      }
    }
    return batch;
  }

  size_t live_count() const { return live_.size(); }

 private:
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng_);
  }
  size_t PickLive() {
    return std::uniform_int_distribution<size_t>(0, live_.size() - 1)(rng_);
  }
  /// A small box whose center lands in the registration domain enlarged by
  /// 10% — some centers fall outside, exercising the sharded router's
  /// grid-clamped boundary path.
  Box RandomBox() {
    const Vec3 extent = domain_.Extent();
    Vec3 center;
    center.x = domain_.lo.x + static_cast<float>(Uniform(-0.1, 1.1)) * extent.x;
    center.y = domain_.lo.y + static_cast<float>(Uniform(-0.1, 1.1)) * extent.y;
    center.z = domain_.lo.z + static_cast<float>(Uniform(-0.1, 1.1)) * extent.z;
    Vec3 half;
    half.x = static_cast<float>(Uniform(0.05, 2.5));
    half.y = static_cast<float>(Uniform(0.05, 2.5));
    half.z = static_cast<float>(Uniform(0.05, 2.5));
    return Box{center - half, center + half};
  }

  std::mt19937_64 rng_;
  Box domain_;
  std::vector<uint32_t> live_;
  uint32_t next_id_ = 0;
};

int RunJoin(const CliOptions& options) {
  Dataset a;
  Dataset b;
  if (!options.file_a.empty() || !options.file_b.empty()) {
    if (options.file_a.empty() || options.file_b.empty()) {
      std::fprintf(stderr, "--a and --b must be given together\n");
      return 1;
    }
    if (!LoadDataset(options.file_a, &a) || !LoadDataset(options.file_b, &b)) {
      return 1;
    }
  } else if (options.neuro_neurons > 0) {
    NeuroOptions neuro;
    neuro.neurons = options.neuro_neurons;
    const NeuroModel model = GenerateNeuroscience(neuro, options.seed);
    a = CylinderMbrs(model.axons);
    b = CylinderMbrs(model.dendrites);
  } else {
    Distribution distribution;
    if (!ParseDistribution(options.distribution, &distribution)) {
      std::fprintf(stderr, "unknown distribution '%s'\n",
                   options.distribution.c_str());
      return 1;
    }
    a = GenerateSynthetic(distribution, options.na, options.seed);
    b = GenerateSynthetic(distribution, options.nb, options.seed + 1);
  }

  std::vector<std::string> algorithms = options.algorithms;
  if (algorithms.size() == 1 && algorithms[0] == "all") {
    algorithms = AllAlgorithmNames();
  }
  if (options.explain &&
      std::find(algorithms.begin(), algorithms.end(), "auto") ==
          algorithms.end()) {
    std::fprintf(stderr, "note: --explain only applies to --algo=auto\n");
  }
  if (options.explain) {
    // Runtime kernel dispatch: the level the epsilon-overlap kernels
    // actually resolved to (auto-detected or forced), the batch width, and
    // what the cpuid probe saw.
    std::fprintf(options.csv ? stderr : stdout,
                 "explain: simd dispatch: %s, %d lanes/batch (%s; cpu: %s)\n",
                 SimdLevelName(), SimdWidth(),
                 SimdLevelForced() ? "forced" : "auto-detected",
                 simd::DetectCpuFeatures().ToString().c_str());
  }

  if (options.csv) {
    std::puts(
        "algorithm,results,comparisons,filtered,memory_bytes,total_s,"
        "build_s,assign_s,join_s");
  } else {
    std::printf("|A| = %zu, |B| = %zu, epsilon = %g\n", a.size(), b.size(),
                options.epsilon);
    std::printf("%-14s %12s %15s %10s %11s %9s\n", "algorithm", "results",
                "comparisons", "filtered", "memory(MB)", "time(s)");
  }

  // Created eagerly when the list contains "auto": the engine owns dataset
  // copies with precomputed stats and keeps built indexes cached across
  // repeated autos. Fixed algorithms in a mixed list also run through it —
  // as cold *teaching runs* (cache cleared first, so timings match the
  // engineless path) whose measurements calibrate later autos.
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<ShardedQueryEngine> sharded;
  DatasetHandle handle_a = 0;
  DatasetHandle handle_b = 0;
  // Observability sinks exist whenever their flags are set, so the export
  // below always has an object to drain — even if no engine run fills it.
  std::shared_ptr<Tracer> tracer;
  std::shared_ptr<MetricsRegistry> metrics;
  if (!options.trace_out.empty()) tracer = std::make_shared<Tracer>();
  if (!options.metrics_out.empty()) {
    metrics = std::make_shared<MetricsRegistry>();
  }
  const bool has_auto = std::find(algorithms.begin(), algorithms.end(),
                                  "auto") != algorithms.end();
  if ((tracer != nullptr || metrics != nullptr) && !has_auto) {
    std::fprintf(stderr,
                 "note: --trace-out/--metrics-out record --algo=auto engine "
                 "runs; output will be empty\n");
  }
  if (has_auto) {
    EngineOptions engine_options;
    engine_options.max_cache_bytes = options.cache_bytes;
    engine_options.cache_admission = options.cache_admission;
    engine_options.calibration.enabled = options.calibration;
    engine_options.shards = options.shards;
    engine_options.tracer = tracer;
    engine_options.metrics = metrics;
    if (options.shards > 1) {
      // --shards routes auto runs through the scatter-gather engine; fixed
      // names in a mixed list fall back to the engineless path (per-shard
      // teaching runs would not be comparable evidence).
      sharded = std::make_unique<ShardedQueryEngine>(engine_options);
      handle_a = sharded->RegisterDataset("A", a);
      handle_b = sharded->RegisterDataset("B", b);
      if (algorithms.size() > 1) {
        std::fprintf(stderr,
                     "note: with --shards>1, fixed algorithms run unsharded "
                     "and do not teach the auto planner\n");
      }
    } else {
      engine = std::make_unique<QueryEngine>(engine_options);
      handle_a = engine->RegisterDataset("A", a);
      handle_b = engine->RegisterDataset("B", b);
    }
  }

  // Shared by both auto paths: the request (with --timeout-ms mapped onto
  // the engine-enforced deadline) and the estimated-vs-measured ratio of
  // the explain report.
  const auto make_auto_request = [&] {
    JoinRequest request{handle_a, handle_b, options.epsilon};
    if (options.timeout_ms > 0) {
      request.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(options.timeout_ms);
    }
    return request;
  };
  const auto estimate_ratio = [](double estimated, uint64_t measured) {
    return measured > 0 && estimated > 0
               ? Format(" (%.2fx)", estimated / static_cast<double>(measured))
               : std::string();
  };

  bool auto_ran = false;
  for (const std::string& name : algorithms) {
    JoinStats stats;
    CountingCollector out;
    std::string display_name = name;
    if (name == "auto" && options.partitions > 0) {
      std::fprintf(stderr, "note: --partitions does not apply to --algo=auto\n");
    }
    if (name == "auto" && sharded != nullptr) {
      auto_ran = true;
      ShardedRequestHandle handle = sharded->Submit(make_auto_request());
      ShardedJoinResult result = handle.Get();
      if (result.merged.cancelled()) {
        std::fprintf(stderr,
                     "auto: cancelled after exceeding --timeout-ms=%d "
                     "(sharded request)\n",
                     options.timeout_ms);
        continue;
      }
      if (!result.merged.error.empty()) {
        std::fprintf(stderr, "%s\n", result.merged.error.c_str());
        return 1;
      }
      std::FILE* report = options.csv ? stderr : stdout;
      std::fprintf(report, "plan: %zu shards/dataset, %zu shard pairs: %zu "
                   "executed, %zu pruned%s\n  reason: %s\n",
                   static_cast<size_t>(sharded->shards()),
                   result.shard_pairs_total, result.pairs.size(),
                   result.pruned.size(),
                   result.merged.index_cache_hit ? " [index cache hit]" : "",
                   result.merged.plan.rationale.c_str());
      if (options.explain) {
        // The per-shard plan report: every executed pair with its centrally
        // computed plan and measured outcome; pruned pairs listed after.
        for (const ShardPairReport& pair : result.pairs) {
          std::fprintf(
              report,
              "  shard[%d,%d]: algorithm=%s results=%llu time=%.4fs%s%s\n",
              pair.shard_a, pair.shard_b, pair.plan.algorithm.c_str(),
              static_cast<unsigned long long>(pair.stats.results),
              pair.stats.total_seconds,
              pair.index_cache_hit ? " [cache hit]" : "",
              pair.status == RequestStatus::kOk ? "" : " [not ok]");
        }
        for (const auto& [shard_a, shard_b] : result.pruned) {
          std::fprintf(report, "  shard[%d,%d]: pruned (MBRs cannot meet)\n",
                       shard_a, shard_b);
        }
        std::fprintf(report,
                     "explain: results estimated %.4g, measured %llu%s; "
                     "%llu boundary duplicates dropped\n",
                     result.merged.plan.expected_results,
                     static_cast<unsigned long long>(
                         result.merged.stats.results),
                     estimate_ratio(result.merged.plan.expected_results,
                                    result.merged.stats.results)
                         .c_str(),
                     static_cast<unsigned long long>(result.deduplicated));
      }
      stats = result.merged.stats;
      display_name = Format("auto:sharded-%d", sharded->shards());
    } else if (name == "auto") {
      auto_ran = true;
      // The engine enforces the budget itself (JoinRequest::deadline) —
      // the wait below is only for reporting which phase the request was
      // in, plus a belt-and-braces Cancel.
      RequestHandle handle = engine->Submit(make_auto_request());
      RequestPhase timed_out_in = RequestPhase::kQueued;
      if (options.timeout_ms > 0 &&
          handle.future().wait_for(std::chrono::milliseconds(
              options.timeout_ms)) == std::future_status::timeout) {
        timed_out_in = handle.phase();
        handle.Cancel();
      }
      const JoinResult result = handle.Get();
      if (result.cancelled()) {
        std::fprintf(stderr,
                     "auto: cancelled after exceeding --timeout-ms=%d "
                     "(request was %s)\n",
                     options.timeout_ms, RequestPhaseName(timed_out_in));
        continue;
      }
      if (!result.error.empty()) {
        std::fprintf(stderr, "%s\n", result.error.c_str());
        return 1;
      }
      // Plans go to stderr in csv mode so stdout stays machine-readable.
      std::FILE* report = options.csv ? stderr : stdout;
      std::fprintf(report, "plan: %s%s\n", result.plan.ToString().c_str(),
                   result.index_cache_hit ? "\n  [index cache hit]" : "");
      if (options.explain) {
        // Histogram-based estimates next to what the run actually measured:
        // the planner's accuracy is inspectable per query.
        std::fprintf(report,
                     "explain: results estimated %.4g, measured %llu%s\n",
                     result.plan.expected_results,
                     static_cast<unsigned long long>(result.stats.results),
                     estimate_ratio(result.plan.expected_results,
                                    result.stats.results)
                         .c_str());
        if (result.plan.calibrated) {
          std::string note = "calibrated";
          if (result.plan.static_algorithm != result.plan.algorithm) {
            note += ", static rule chose " + result.plan.static_algorithm;
          }
          std::fprintf(report,
                       "explain: cost predicted %.4gs, measured %.4gs (%s)\n",
                       result.plan.predicted_seconds,
                       result.stats.total_seconds, note.c_str());
        } else if (!engine->options().calibration.enabled) {
          std::fprintf(report,
                       "explain: calibration disabled (--calibration=off); "
                       "static plan, no cost prediction\n");
        } else {
          std::fprintf(
              report,
              "explain: no calibrated cost prediction yet (%llu cold runs "
              "recorded; families need %zu each, the static choice among "
              "them)\n",
              static_cast<unsigned long long>(
                  engine->feedback().total_recorded()),
              engine->options().calibration.min_samples);
        }
      }
      stats = result.stats;
      display_name = "auto:" + result.plan.algorithm;
    } else if (engine != nullptr && options.partitions == 0) {
      // Mixed --algo list: fixed runs are evidence for the calibrator. In
      // the teaching phase (before the first auto) the cache is cleared so
      // repeated fixed names each measure a cold build; once an auto has
      // run, its cached artifacts are left alone — a later fixed run only
      // records when it happens to be cold. Note the engine may orient a
      // fixed join differently (build side, cache accounting) than the
      // engineless fixed-only path, so rows are comparable within one
      // invocation, not across the two modes.
      if (MakeAlgorithm(name) == nullptr) {
        std::fprintf(stderr, "%s; this CLI also accepts 'auto' and 'all'\n",
                     UnknownAlgorithmMessage(name).c_str());
        return 1;
      }
      if (!auto_ran) engine->ClearIndexCache();
      const JoinRequest request{handle_a, handle_b, options.epsilon};
      const JoinResult result = engine->ExecuteFixed(name, request, out);
      if (!result.error.empty()) {
        std::fprintf(stderr, "%s\n", result.error.c_str());
        return 1;
      }
      stats = result.stats;
    } else if (options.partitions > 0) {
      PartitionedOptions popt;
      popt.partitions = options.partitions;
      popt.threads = options.threads;
      Dataset enlarged = a;
      for (Box& box : enlarged) box = box.Enlarged(options.epsilon);
      if (MakeAlgorithm(name) == nullptr) {
        std::fprintf(stderr, "%s; this CLI also accepts 'auto' and 'all'\n",
                     UnknownAlgorithmMessage(name).c_str());
        return 1;
      }
      stats = PartitionedJoin([&] { return MakeAlgorithm(name); }, enlarged,
                              b, popt, out);
    } else {
      std::unique_ptr<SpatialJoinAlgorithm> algorithm = MakeAlgorithm(name);
      if (algorithm == nullptr) {
        std::fprintf(stderr, "%s; this CLI also accepts 'auto' and 'all'\n",
                     UnknownAlgorithmMessage(name).c_str());
        return 1;
      }
      stats = DistanceJoin(*algorithm, a, b, options.epsilon, out);
    }
    if (options.csv) {
      std::printf("%s,%llu,%llu,%llu,%zu,%.6f,%.6f,%.6f,%.6f\n",
                  display_name.c_str(),
                  static_cast<unsigned long long>(stats.results),
                  static_cast<unsigned long long>(stats.comparisons),
                  static_cast<unsigned long long>(stats.filtered),
                  stats.memory_bytes, stats.total_seconds, stats.build_seconds,
                  stats.assign_seconds, stats.join_seconds);
    } else {
      std::printf("%-14s %12llu %15llu %10llu %11.2f %9.3f\n",
                  display_name.c_str(),
                  static_cast<unsigned long long>(stats.results),
                  static_cast<unsigned long long>(stats.comparisons),
                  static_cast<unsigned long long>(stats.filtered),
                  static_cast<double>(stats.memory_bytes) / (1024.0 * 1024.0),
                  stats.total_seconds);
    }
  }
  // The --mutate loop: dataset A changes under the engine's feet, and the
  // re-run after each batch goes through the versioned cache and the
  // incremental stats path. The checksum lines are the identity harness's
  // contract: a sharded and an unsharded run over the same seeds must print
  // byte-identical 'mutation batch' lines.
  if (options.mutate_batches > 0) {
    if (engine == nullptr && sharded == nullptr) {
      std::fprintf(stderr, "--mutate requires --algo=auto\n");
      return 1;
    }
    Box domain = Box::Empty();
    for (const Box& box : a) domain.ExpandToContain(box);
    const uint64_t mutate_seed = options.mutate_seed_set
                                     ? options.mutate_seed
                                     : options.seed + 1000;
    MutationStream stream(mutate_seed, a, domain);
    std::FILE* report = options.csv ? stderr : stdout;
    for (int batch = 0; batch < options.mutate_batches; ++batch) {
      const std::vector<Mutation> muts = stream.NextBatch(options.mutate_ops);
      const uint64_t version =
          sharded != nullptr ? sharded->ApplyMutations(handle_a, muts)
                             : engine->ApplyMutations(handle_a, muts);
      ChecksumCollector sink;
      const JoinRequest request = make_auto_request();
      std::string error;
      if (sharded != nullptr) {
        error = sharded->Execute(request, sink).merged.error;
      } else {
        error = engine->Execute(request, sink).error;
      }
      if (!error.empty()) {
        std::fprintf(stderr, "mutation batch %d: %s\n", batch, error.c_str());
        return 1;
      }
      std::fprintf(report,
                   "mutation batch %d: version=%llu live=%zu results=%llu "
                   "checksum=%016llx\n",
                   batch, static_cast<unsigned long long>(version),
                   stream.live_count(),
                   static_cast<unsigned long long>(sink.count()),
                   static_cast<unsigned long long>(sink.sum()));
    }
  }
  // Cache telemetry belongs to the auto plan report: hit rate and evictions
  // show whether the cap (if any) is sized right for the query mix.
  if (engine != nullptr || sharded != nullptr) {
    const IndexCache::Stats cache = engine != nullptr
                                        ? engine->cache_stats()
                                        : sharded->engine().cache_stats();
    std::fprintf(
        options.csv ? stderr : stdout,
        "index cache: %.0f%% hit rate (%llu/%llu), %llu evictions, "
        "%llu admission rejects, %llu pre-admits, %zu entries, %.2f MB%s, "
        "%.3fs of rebuilds avoided\n",
        cache.HitRate() * 100.0,
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.hits + cache.misses),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(cache.admission_rejects),
        static_cast<unsigned long long>(cache.admission_preadmits),
        cache.entries,
        static_cast<double>(cache.bytes) / (1024.0 * 1024.0),
        cache.capacity_bytes == 0 ? " (unbounded)" : "",
        cache.cost_saved_seconds);
  }
  // Exported while the engine is still alive: the registry's cache/pool
  // gauges are sampled through providers the engine owns.
  if (tracer != nullptr) {
    std::ofstream out(options.trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.trace_out.c_str());
      return 1;
    }
    tracer->ExportChromeTrace(out);
    std::fprintf(options.csv ? stderr : stdout, "trace: %zu spans -> %s%s\n",
                 tracer->span_count(), options.trace_out.c_str(),
                 tracer->drops() > 0 ? " (buffer overflow, spans dropped)"
                                     : "");
  }
  if (metrics != nullptr) {
    std::ofstream out(options.metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_out.c_str());
      return 1;
    }
    metrics->ExportPrometheus(out);
    std::fprintf(options.csv ? stderr : stdout,
                 "metrics: %zu families -> %s\n", metrics->FamilyCount(),
                 options.metrics_out.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 1;
  }
  if (options.help) {
    PrintUsage();
    return 0;
  }
  if (options.simd != "auto") {
    const std::optional<simd::Level> level = simd::ParseLevelName(options.simd);
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "bad --simd value: %s (expected auto|scalar|sse2|avx2|"
                   "neon)\n",
                   options.simd.c_str());
      return 1;
    }
    std::string error;
    if (!ForceSimdLevel(*level, &error)) {
      std::fprintf(stderr, "--simd=%s: %s\n", options.simd.c_str(),
                   error.c_str());
      return 1;
    }
  }
  if (!options.generate.empty()) return RunGenerate(options);
  return RunJoin(options);
}

}  // namespace
}  // namespace touch

int main(int argc, char** argv) { return touch::Main(argc, argv); }
