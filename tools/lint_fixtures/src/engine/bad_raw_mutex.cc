// EXPECT-VIOLATION: naked-lock
// Fixture: raw std locking primitives outside util/thread_annotations.h.
// std::lock_guard over std::mutex is invisible to -Wthread-safety (no
// capability attributes), so all locking must go through the shims.
#include <mutex>

namespace touch {

class RawMutexHolder {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace touch
