// EXPECT-CLEAN
// Fixture: same shape as bad_iwyu.h but with every used symbol's header
// included directly.
#ifndef TOUCH_LINT_FIXTURES_CLEAN_IWYU_H_
#define TOUCH_LINT_FIXTURES_CLEAN_IWYU_H_

#include <cstdint>
#include <vector>

namespace touch {

struct CleanIwyuStats {
  uint64_t emitted = 0;
  std::vector<uint64_t> per_shard;
};

}  // namespace touch

#endif  // TOUCH_LINT_FIXTURES_CLEAN_IWYU_H_
