// EXPECT-VIOLATION: iwyu
// Fixture: uses uint64_t and std::vector but includes neither <cstdint>
// nor <vector> — it compiles only while some other header happens to drag
// them in transitively.
#ifndef TOUCH_LINT_FIXTURES_BAD_IWYU_H_
#define TOUCH_LINT_FIXTURES_BAD_IWYU_H_

namespace touch {

struct BadIwyuStats {
  uint64_t emitted = 0;
  std::vector<uint64_t> per_shard;
};

}  // namespace touch

#endif  // TOUCH_LINT_FIXTURES_BAD_IWYU_H_
