// EXPECT-CLEAN
// Fixture: both compliant Emit shapes — drain under the lock into a local,
// emit after the scope closes; and Emit under a *sink_mutex* lock, whose
// entire purpose is serializing Emit across producers (allowlisted).
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace touch {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void Emit(int a, int b) = 0;
};

class CleanEmitter {
 public:
  void Flush(ResultSink* sink) {
    std::vector<int> drained;
    {
      MutexLock lock(mutex_);
      drained = std::move(pending_);
      pending_.clear();
    }
    for (int value : drained) {
      sink->Emit(value, value + 1);
    }
  }

  void SerializedEmit(ResultSink* sink, int a, int b) {
    MutexLock lock(sink_mutex_);
    sink->Emit(a, b);
  }

 private:
  Mutex mutex_;
  Mutex sink_mutex_;
  std::vector<int> pending_ GUARDED_BY(mutex_);
};

}  // namespace touch
