// EXPECT-VIOLATION: emit-under-lock
// Fixture: Emit() into a user-supplied ResultSink while an engine MutexLock
// is held — the deadlock factory the rule exists to prevent (user code can
// call back into the engine and re-acquire the same mutex).
#include "util/thread_annotations.h"

namespace touch {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void Emit(int a, int b) = 0;
};

class BadEmitter {
 public:
  void Flush(ResultSink* sink) {
    MutexLock lock(mutex_);
    for (int i = 0; i < pending_; ++i) {
      sink->Emit(i, i + 1);
    }
    pending_ = 0;
  }

 private:
  Mutex mutex_;
  int pending_ GUARDED_BY(mutex_) = 0;
};

}  // namespace touch
