// EXPECT-CLEAN
// Fixture: the compliant delta-probe shape — the DeltaProbe* body polls the
// subscription's stop token, so Cancel() lands mid-burst.
#include "obs/trace.h"
#include "util/cancellation.h"

namespace touch {

struct Sub {
  CancellationToken cancel;
  int deltas = 0;
};

size_t DeltaProbeLocked(Sub& sub) {
  size_t emitted = 0;
  for (int i = 0; i < sub.deltas; ++i) {
    if (sub.cancel.stop_requested()) break;
    ++emitted;
  }
  return emitted;
}

size_t ProbeAll(SpanContext parent, Sub& sub) {
  SpanScope probe_span(parent, "delta-probe");
  return DeltaProbeLocked(sub);
}

}  // namespace touch
