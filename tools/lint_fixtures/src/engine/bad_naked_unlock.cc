// EXPECT-VIOLATION: naked-lock
// Fixture: manual lock()/unlock() calls outside the annotated shims. The
// thread-safety analysis cannot see these acquisitions, and the early
// return leaks the lock — the bug class the shims make unrepresentable.
#include "util/thread_annotations.h"

namespace touch {

class BadUnlocker {
 public:
  int Take() {
    mu_.lock();
    if (value_ < 0) {
      return -1;  // oops: returns with mu_ still held
    }
    const int taken = value_;
    value_ = 0;
    mu_.unlock();
    return taken;
  }

 private:
  Mutex mu_;
  int value_ = 0;
};

}  // namespace touch
