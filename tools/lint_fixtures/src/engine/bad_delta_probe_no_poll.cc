// EXPECT-VIOLATION: cancellation-poll
// Fixture: opens the "delta-probe" span but the DeltaProbe* implementation
// never polls stop_requested() — a Cancel() racing a mutation batch would
// only land after the whole delta sweep.
#include "obs/trace.h"

namespace touch {

struct Sub {
  int deltas = 0;
};

size_t DeltaProbeLocked(Sub& sub) {
  size_t emitted = 0;
  for (int i = 0; i < sub.deltas; ++i) {
    ++emitted;  // emits every delta, cancelled or not
  }
  return emitted;
}

size_t ProbeAll(SpanContext parent, Sub& sub) {
  SpanScope probe_span(parent, "delta-probe");
  return DeltaProbeLocked(sub);
}

}  // namespace touch
