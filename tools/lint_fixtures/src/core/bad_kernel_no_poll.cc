// EXPECT-VIOLATION: cancellation-poll
// Fixture: a kernel function that accepts a CancellationToken but never
// polls it and never forwards it — the candidate loop would run to
// completion no matter what the engine's cancel/deadline machinery says.
#include "util/cancellation.h"

namespace touch {

int BadKernelJoin(int n, const CancellationToken& cancel) {
  int pairs = 0;
  for (int b_id = 0; b_id < n; ++b_id) {
    for (int probe = 0; probe < n; ++probe) {
      if ((b_id ^ probe) & 1) ++pairs;
    }
  }
  return pairs;
}

}  // namespace touch
