// EXPECT-CLEAN
// Fixture: the compliant kernel shape — an amortized-stride poll with a
// power-of-two-minus-one mask, plus forwarding into a helper.
#include "util/cancellation.h"

namespace touch {

void LeafJoin(int n, const CancellationToken& cancel);

int CleanKernelJoin(int n, const CancellationToken& cancel) {
  int pairs = 0;
  for (int i = 0; i < n; ++i) {
    if ((i & 1023u) == 0 && cancel.stop_requested()) break;
    LeafJoin(i, cancel);
    pairs += i & 1;
  }
  return pairs;
}

}  // namespace touch
