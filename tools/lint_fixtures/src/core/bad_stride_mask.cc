// EXPECT-VIOLATION: cancellation-poll
// Fixture: the kernel does poll, but its stride mask is 1000 — not a power
// of two minus one — so `(i & 1000u) == 0` fires on an irregular
// subsequence instead of every 1024th iteration.
#include "util/cancellation.h"

namespace touch {

int BadStrideJoin(int n, const CancellationToken& cancel) {
  int pairs = 0;
  for (int i = 0; i < n; ++i) {
    if ((i & 1000u) == 0 && cancel.stop_requested()) break;
    pairs += i & 1;
  }
  return pairs;
}

}  // namespace touch
