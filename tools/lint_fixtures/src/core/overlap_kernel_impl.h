// EXPECT-VIOLATION: cancellation-poll
// Fixture: mirrors the batched overlap kernel's designated path
// (STRIDE_POLL_REQUIRED). The tree-probe loop forwards its token into a
// helper — satisfying the per-function check — but the file has lost its
// amortized-stride poll over the query loop, so a cancelled request would
// ride out the whole probe batch. The per-file minimum must flag this.
#include "util/cancellation.h"

namespace touch {

int ProbeOne(int query, const CancellationToken& cancel);

int BatchedTreeProbe(int queries, const CancellationToken& cancel) {
  int emitted = 0;
  for (int q = 0; q < queries; ++q) {
    emitted += ProbeOne(q, cancel);
  }
  return emitted;
}

}  // namespace touch
