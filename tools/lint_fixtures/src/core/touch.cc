// EXPECT-VIOLATION: cancellation-poll
// Fixture: mirrors the path of a designated kernel file
// (STRIDE_POLL_REQUIRED). The function forwards its token — so the
// per-function check passes — but the file has no amortized-stride poll
// left, which is exactly the regression the per-file minimum catches.
#include "util/cancellation.h"

namespace touch {

void LeafJoin(int n, const CancellationToken& cancel);

void TouchJoin(int n, const CancellationToken& cancel) {
  for (int node = 0; node < n; ++node) {
    LeafJoin(node, cancel);
  }
}

}  // namespace touch
