#!/usr/bin/env python3
"""Run clang-tidy over the project's own sources with a bounded suppression
list.

Drives the checked-in .clang-tidy profile across every src/ translation unit
in compile_commands.json (configure with CMAKE_EXPORT_COMPILE_COMMANDS, which
the root CMakeLists sets unconditionally):

    cmake -B build -S .
    python3 tools/run_clang_tidy.py --build-dir build

Diagnostics are matched against tools/clang_tidy_suppressions.txt; anything
unsuppressed fails the run. The suppression list is a safety valve, not a
policy: it is capped at MAX_SUPPRESSIONS entries so it cannot silently grow
into a second, weaker .clang-tidy (docs/STATIC_ANALYSIS.md has the policy).

Without clang-tidy on PATH the script reports a notice and exits 0 so
GCC-only development containers are not blocked; CI passes --require, which
turns the missing binary into a failure there.
"""

import argparse
import concurrent.futures
import contextlib
import json
import os
import re
import shutil
import signal
import subprocess
import sys

# Die silently when the consumer closes the pipe (`... | head`).
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SUPPRESSIONS_PATH = os.path.join(REPO_ROOT, "tools",
                                 "clang_tidy_suppressions.txt")

# Hard cap on suppression entries: past this, the list is hiding a systemic
# problem that belongs in .clang-tidy (or fixed), not appended to.
MAX_SUPPRESSIONS = 20

# path:line:col: severity: message [check-name]
DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<severity>warning|error):\s+(?P<message>.*?)"
    r"(?:\s+\[(?P<check>[\w.,-]+)\])?$")


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for candidate in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                      "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(candidate):
            return candidate
    return None


def load_suppressions():
    """Parses `<path-substring> <check> [# reason]` lines; enforces the cap."""
    entries = []
    if not os.path.exists(SUPPRESSIONS_PATH):
        return entries
    with open(SUPPRESSIONS_PATH, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                sys.exit(f"{SUPPRESSIONS_PATH}:{lineno}: expected "
                         f"'<path-substring> <check-name>', got: {raw.rstrip()}")
            entries.append((parts[0], parts[1]))
    if len(entries) > MAX_SUPPRESSIONS:
        sys.exit(f"{SUPPRESSIONS_PATH}: {len(entries)} entries exceeds the "
                 f"cap of {MAX_SUPPRESSIONS}; fix findings or adjust "
                 f".clang-tidy instead of growing the list")
    return entries


def is_suppressed(diag, suppressions):
    rel = os.path.relpath(diag["path"], REPO_ROOT)
    for path_sub, check in suppressions:
        if path_sub in rel and check in (diag.get("check") or ""):
            return True
    return False


def collect_sources(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(f"{db_path} not found; configure with `cmake -B {build_dir}`"
                 " first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    with open(db_path, encoding="utf-8") as handle:
        database = json.load(handle)
    src_root = os.path.join(REPO_ROOT, "src") + os.sep
    sources = sorted({
        entry["file"]
        for entry in database
        if os.path.abspath(entry["file"]).startswith(src_root)
    })
    if not sources:
        sys.exit(f"no src/ translation units in {db_path}")
    return sources


def run_one(binary, build_dir, source):
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet", source],
        capture_output=True,
        text=True,
        check=False,
    )
    diags = []
    for line in proc.stdout.splitlines():
        match = DIAG_RE.match(line)
        if match:
            diags.append(match.groupdict())
    return source, diags, proc.returncode, proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: auto-detect)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--require", action="store_true",
                        help="fail (not skip) when clang-tidy is missing")
    parser.add_argument("--list-only", action="store_true",
                        help="print the translation units and exit")
    args = parser.parse_args()

    build_dir = os.path.abspath(args.build_dir)
    sources = collect_sources(build_dir)
    if args.list_only:
        print("\n".join(sources))
        return 0

    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        message = "run_clang_tidy: no clang-tidy binary on PATH"
        if args.require:
            sys.exit(message + " (--require)")
        print(message + "; skipping (install clang-tidy to run locally)")
        return 0

    suppressions = load_suppressions()
    print(f"run_clang_tidy: {binary} over {len(sources)} translation units "
          f"({len(suppressions)} suppression entries)")

    failures = []
    used_suppressions = set()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, binary, build_dir, source)
            for source in sources
        ]
        for future in concurrent.futures.as_completed(futures):
            source, diags, returncode, stderr = future.result()
            # clang-tidy returns nonzero for tool-level errors (bad flags,
            # unparseable TU) even with zero diagnostics; surface those too.
            if returncode != 0 and not diags:
                failures.append({
                    "path": source, "line": "0", "col": "0",
                    "severity": "error", "check": None,
                    "message": f"clang-tidy exited {returncode}: "
                               f"{stderr.strip().splitlines()[-1:] or 'n/a'}",
                })
                continue
            for diag in diags:
                if is_suppressed(diag, suppressions):
                    used_suppressions.add((diag["path"], diag.get("check")))
                    continue
                failures.append(diag)

    for diag in failures:
        rel = os.path.relpath(diag["path"], REPO_ROOT)
        check = f" [{diag['check']}]" if diag.get("check") else ""
        print(f"{rel}:{diag['line']}:{diag['col']}: {diag['severity']}: "
              f"{diag['message']}{check}")
    if failures:
        print(f"run_clang_tidy: {len(failures)} unsuppressed finding(s)")
        return 1
    print("run_clang_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
