#!/usr/bin/env python3
"""Gate benchmark results against a checked-in baseline.

Usage:
    compare_bench.py bench/baseline.json BENCH_pr.json \
        [--max-slowdown 1.25] [--min-ms 0.5] [--normalize median|none]

Both files use the touch-bench-v1 schema written by tools/bench_to_json.py.
Exit code 0 when no benchmark regressed, 1 when any did (the CI gate).

Machine-speed normalization: CI runners and the machine that produced the
baseline differ in absolute speed, so raw per-benchmark ratios shift
uniformly. With --normalize median (the default) every ratio is divided by
the median ratio across all compared benchmarks before gating — a uniform
slowdown cancels out, while a benchmark that regressed *relative to the
rest* still trips the gate. That is exactly the class of regression a code
change causes (an injected 2x slowdown in one benchmark yields a relative
ratio ~2 and fails). Use --normalize none on hardware identical to the
baseline's to also catch across-the-board drift.

Benchmarks below --min-ms in the baseline are reported but never gate:
sub-millisecond timings are scheduler noise. Benchmarks present on only one
side are listed as added/removed and never gate either (refreshing the
baseline is how renames land).
"""

import argparse
import json
import statistics
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "touch-bench-v1":
        raise SystemExit(f"{path}: not a touch-bench-v1 document "
                         "(produce it with tools/bench_to_json.py)")
    return doc["benchmarks"]


def main():
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regressed versus a baseline.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-slowdown", type=float, default=1.25,
                        help="fail above this (normalized) ratio "
                             "(default: 1.25 = +25%%)")
    parser.add_argument("--min-ms", type=float, default=0.5,
                        help="ignore benchmarks faster than this in the "
                             "baseline (default: 0.5 ms)")
    parser.add_argument("--normalize", choices=["median", "none"],
                        default="median",
                        help="divide ratios by the median ratio so "
                             "machine-speed differences cancel "
                             "(default: median)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    added = sorted(set(current) - set(baseline))
    removed = sorted(set(baseline) - set(current))
    shared = sorted(set(baseline) & set(current))
    if not shared:
        raise SystemExit("no benchmarks in common between baseline and "
                         "current results")

    rows = []
    for name in shared:
        base_ms = baseline[name]["real_time_ms"]
        cur_ms = current[name]["real_time_ms"]
        gated = base_ms >= args.min_ms
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        rows.append({"name": name, "base_ms": base_ms, "cur_ms": cur_ms,
                     "ratio": ratio, "gated": gated})

    gated_rows = [r for r in rows if r["gated"]]
    norm = 1.0
    if args.normalize == "median" and gated_rows:
        norm = statistics.median(r["ratio"] for r in gated_rows)
        if norm <= 0:
            norm = 1.0
    for row in rows:
        row["relative"] = row["ratio"] / norm

    regressions = [r for r in gated_rows
                   if r["relative"] > args.max_slowdown]

    print(f"{len(shared)} benchmarks compared, "
          f"{len(gated_rows)} gated (>= {args.min_ms} ms), "
          f"machine-speed normalization: {norm:.3f}x")
    header = f"{'benchmark':60s} {'base ms':>10s} {'pr ms':>10s} " \
             f"{'ratio':>7s} {'rel':>7s}"
    print(header)
    for row in sorted(rows, key=lambda r: -r["relative"]):
        flag = ""
        if row in regressions:
            flag = "  << REGRESSION"
        elif not row["gated"]:
            flag = "  (below min-ms, not gated)"
        print(f"{row['name']:60s} {row['base_ms']:10.3f} "
              f"{row['cur_ms']:10.3f} {row['ratio']:7.2f} "
              f"{row['relative']:7.2f}{flag}")
    for name in added:
        print(f"added (no baseline, not gated): {name}")
    for name in removed:
        print(f"removed from current results:   {name}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) slower than "
              f"{args.max_slowdown:.2f}x the baseline (normalized). "
              "If intentional, refresh bench/baseline.json via "
              "tools/bench_to_json.py and explain why in the PR.")
        return 1
    print(f"\nOK: no benchmark exceeded {args.max_slowdown:.2f}x "
          "(normalized) of its baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
