#!/usr/bin/env python3
"""Summarize a Chrome trace written by spatial_join_cli --trace-out.

Usage:
    trace_summary.py TRACE.json [--top N] [--require NAME,NAME,...] [--strict]

Prints the top span names by total SELF time — wall time inside a span minus
the time covered by its child spans (parentage from args.parent_id, which the
repo's Tracer attaches to every event). Self time is what tells you where a
request actually burned its budget: a "request" span always tops a total-time
ranking, but its self time is only the scheduling glue between phases.

Instant events ("ph":"i" — phase markers, cancellation, first-result) carry
no duration; they are tallied separately as a count per name.

Flags:
    --top N            rows to print (default 15)
    --require A,B,...  exit 1 unless every listed span name occurs; this is
                       how CI asserts a trace covers plan/build/execute/gather
    --strict           exit 1 if any span references a parent_id that is not
                       in the trace (dropped or never recorded) — buffer
                       overflow aside, an orphan means broken propagation

Exit code 0 on success, 1 on unmet --require/--strict or unreadable input.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"cannot read {path}: {err}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SystemExit(f"{path}: no traceEvents array (not a Chrome trace?)")
    return events


def summarize(events):
    """Returns (per-name aggregates, instant counts, orphan parent ids)."""
    spans = {}  # span_id -> event (complete events only)
    for event in events:
        if event.get("ph") != "X":
            continue
        span_id = event.get("args", {}).get("span_id")
        if span_id is not None:
            spans[span_id] = event

    # Children's duration is charged against the parent's self time. A child
    # on another thread still subtracts: the parent was logically waiting.
    child_time = defaultdict(float)
    orphans = []
    for event in spans.values():
        parent_id = event.get("args", {}).get("parent_id", "0")
        if parent_id in ("0", None):
            continue
        if parent_id not in spans:
            orphans.append(parent_id)
            continue
        child_time[parent_id] += float(event.get("dur", 0.0))

    totals = defaultdict(lambda: {"count": 0, "total_us": 0.0, "self_us": 0.0})
    for span_id, event in spans.items():
        row = totals[event.get("name", "?")]
        duration = float(event.get("dur", 0.0))
        row["count"] += 1
        row["total_us"] += duration
        # Clamp: overlapping children (parallel workers under one span) can
        # sum past the parent's wall time.
        row["self_us"] += max(0.0, duration - child_time.get(span_id, 0.0))

    instants = defaultdict(int)
    for event in events:
        if event.get("ph") == "i":
            instants[event.get("name", "?")] += 1
    return totals, instants, orphans


def main():
    parser = argparse.ArgumentParser(
        description="Top spans by self time from a --trace-out JSON file.")
    parser.add_argument("trace", help="Chrome trace from --trace-out")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="rows to print (default 15)")
    parser.add_argument("--require", default="", metavar="NAMES",
                        help="comma-separated span names that must occur")
    parser.add_argument("--strict", action="store_true",
                        help="fail on spans whose parent is absent")
    args = parser.parse_args()

    events = load_events(args.trace)
    totals, instants, orphans = summarize(events)

    print(f"{'span':24} {'count':>6} {'self(ms)':>10} {'total(ms)':>10}")
    ranked = sorted(totals.items(), key=lambda kv: -kv[1]["self_us"])
    for name, row in ranked[:args.top]:
        print(f"{name:24} {row['count']:6d} {row['self_us'] / 1e3:10.3f} "
              f"{row['total_us'] / 1e3:10.3f}")
    if instants:
        markers = ", ".join(f"{name} x{count}"
                            for name, count in sorted(instants.items()))
        print(f"instants: {markers}")

    status = 0
    required = [name for name in args.require.split(",") if name]
    missing = [name for name in required
               if name not in totals and name not in instants]
    if missing:
        print(f"MISSING required spans: {', '.join(missing)}",
              file=sys.stderr)
        status = 1
    if args.strict and orphans:
        print(f"ORPHAN spans: {len(orphans)} reference absent parents "
              f"(dropped by buffer overflow, or propagation is broken)",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
