#!/usr/bin/env python3
"""Project-invariant linter: AST-light checks for the repo-specific
concurrency contracts no generic tool knows about.

Rules (catalog with rationale in docs/STATIC_ANALYSIS.md):

  cancellation-poll   Every function in the kernel layers (src/core, src/join,
                      src/engine .cc files) that receives a CancellationToken
                      or ExecContext must poll stop_requested() or forward the
                      token onward; designated kernel files must additionally
                      contain at least one amortized-stride poll, and every
                      stride mask used with a poll must be a power of two
                      minus one (a non-mask stride silently polls never or
                      always). A file that opens a "delta-probe" tracing span
                      (the continuous-join re-probe after a mutation batch)
                      must poll stop_requested() in its DeltaProbe*
                      implementation, so Cancel() lands mid-burst instead of
                      after a whole delta sweep.

  emit-under-lock     In src/engine and src/obs, ResultSink::Emit (any
                      .Emit()/->Emit() call) must not run while a MutexLock
                      is held — user code called under an engine lock is a
                      deadlock factory. The one exception is a lock over a
                      mutex named *sink_mutex*, which exists precisely to
                      serialize Emit across shard pairs.

  naked-lock          No .lock()/.unlock()/.try_lock() calls and no raw
                      std::mutex/lock_guard/unique_lock/condition_variable
                      outside util/thread_annotations.h: all locking goes
                      through the annotated Mutex/MutexLock/CondVar shims so
                      clang -Wthread-safety sees every acquisition.

  iwyu                src/engine and src/obs headers (plus the util headers
                      in that graph) must directly include what they use,
                      for a curated map of std symbols -> headers. Keeps the
                      include graph honest so refactors don't break builds
                      at a distance.

Usage:
    python3 tools/lint_invariants.py               # lint the tree
    python3 tools/lint_invariants.py --self-test   # run fixture suite
    python3 tools/lint_invariants.py FILE...       # lint specific files

Exit code 0 = clean, 1 = violations (or a failed self-test expectation).
"""

import argparse
import fnmatch
import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tools", "lint_fixtures")

# Files that implement join kernels: each must keep at least one
# amortized-stride cancellation poll (`(i & 1023u) == 0 && ...`).
# engine.cc left this list when its last inline kernel loop (the INL probe)
# moved into the batched overlap kernel; overlap_kernel.cc left it when the
# kernel bodies (and the poll with them) moved into overlap_kernel_impl.h,
# the header the per-ISA dispatch TUs compile.
STRIDE_POLL_REQUIRED = (
    "src/core/overlap_kernel_impl.h",
    "src/core/touch.cc",
    "src/join/pbsm.cc",
)

# The only file allowed to touch raw std locking primitives.
LOCK_SHIM = "src/util/thread_annotations.h"

# Curated symbol -> required direct include. Deliberately small: every entry
# is a symbol this codebase actually uses and has been burned by (or would
# be) when an include arrived transitively.
IWYU_MAP = (
    (r"\bstd::mutex\b|\bstd::unique_lock\b|\bstd::lock_guard\b", "<mutex>"),
    (r"\bstd::condition_variable\b", "<condition_variable>"),
    (r"\b(?:u?int(?:8|16|32|64)_t)\b", "<cstdint>"),
    (r"\bsize_t\b", "<cstddef>"),
    (r"\bstd::function\b", "<functional>"),
    (r"\bstd::string\b", "<string>"),
    (r"\bstd::vector\b", "<vector>"),
    (r"\bstd::map\b|\bstd::multimap\b", "<map>"),
    (r"\bstd::deque\b", "<deque>"),
    (r"\bstd::list\b", "<list>"),
    (r"\bstd::array\b", "<array>"),
    (r"\bstd::atomic\b|\bstd::memory_order\w*\b", "<atomic>"),
    (r"\bstd::(?:shared_ptr|unique_ptr|weak_ptr|make_unique|make_shared|"
     r"enable_shared_from_this)\b", "<memory>"),
    (r"\bstd::optional\b|\bstd::nullopt\b", "<optional>"),
    (r"\bstd::span\b", "<span>"),
    (r"\bstd::(?:future|promise|shared_future|async)\b", "<future>"),
    (r"\bstd::thread\b", "<thread>"),
    (r"\bstd::ostream\b", "<ostream>"),
    (r"\bstd::pair\b|\bstd::move\b(?=\s*\()", "<utility>"),
    (r"\bstd::(?:tuple|tie)\b", "<tuple>"),
    (r"\bstd::chrono\b", "<chrono>"),
)

# Headers held to the iwyu rule: the engine+obs graph and the util headers
# it is built on.
IWYU_HEADER_GLOBS = (
    "src/engine/*.h",
    "src/obs/*.h",
    "src/util/cancellation.h",
    "src/util/thread_annotations.h",
)


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets and
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def body_span(text, open_brace):
    """Span of a balanced {...} starting at open_brace (index of '{')."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return open_brace, i + 1
    return open_brace, len(text)


# --- Rule: cancellation-poll -------------------------------------------------

TOKEN_PARAM_RE = re.compile(
    r"(?:const\s+)?(?:CancellationToken|ExecContext)\s*&?\s*(\w+)\s*[,)]")
STRIDE_POLL_RE = re.compile(
    r"&\s*(?:0[xX][0-9a-fA-F]+|\d+)[uU]?[lL]*\s*\)\s*==\s*0")
MASK_VALUE_RE = re.compile(r"&\s*(0[xX][0-9a-fA-F]+|\d+)[uU]?[lL]*\s*\)\s*==")
# A DeltaProbe* function *definition* (params then '{', no ';' between).
DELTA_PROBE_FN_RE = re.compile(r"\bDeltaProbe\w*\s*\([^;{]*\)[^;{]*\{")


def check_cancellation(path, rel, raw, stripped, violations):
    # Functions taking a token must poll it or pass it on.
    for match in TOKEN_PARAM_RE.finditer(stripped):
        name = match.group(1)
        # Find the body: the next '{' at this nesting that follows the
        # parameter list's closing paren. Heuristic: first '{' after the
        # match that is preceded (ignoring whitespace) by ')' or 'const'
        # or a noexcept/annotation token — good enough for this codebase's
        # function-definition style.
        brace = stripped.find("{", match.end())
        if brace == -1:
            continue
        between = stripped[match.end():brace]
        if ";" in between:
            continue  # declaration, not a definition
        start, end = body_span(stripped, brace)
        body = stripped[start:end]
        polls = re.search(r"\bstop_requested\s*\(", body)
        forwards = re.search(r"[(,{&\s]" + re.escape(name) + r"\s*[,)]", body)
        member_use = re.search(re.escape(name) + r"\s*[.-]", body)
        if not (polls or forwards or member_use):
            violations.append(Violation(
                "cancellation-poll", path, line_of(stripped, match.start()),
                f"function takes cancellation state '{name}' but neither "
                f"polls stop_requested() nor forwards it"))

    # Stride masks near a poll must be power-of-two minus one.
    for match in MASK_VALUE_RE.finditer(stripped):
        window_start = stripped.rfind("\n", 0, max(0, match.start() - 160))
        window_end = stripped.find("\n", min(len(stripped), match.end() + 160))
        window = stripped[window_start:window_end if window_end != -1 else
                          len(stripped)]
        if "stop_requested" not in window:
            continue
        value = int(match.group(1), 0)
        if value == 0 or (value & (value + 1)) != 0:
            violations.append(Violation(
                "cancellation-poll", path, line_of(stripped, match.start()),
                f"cancellation poll stride mask {match.group(1)} is not a "
                f"power of two minus one; `(i & {value}) == 0` fires on an "
                f"irregular (or empty) subsequence"))

    # Designated kernel files must keep at least one amortized-stride poll.
    if rel in STRIDE_POLL_REQUIRED:
        found = False
        for match in STRIDE_POLL_RE.finditer(stripped):
            tail = stripped[match.end():match.end() + 120]
            if "stop_requested" in tail:
                found = True
                break
        if not found:
            violations.append(Violation(
                "cancellation-poll", path, 1,
                "kernel file lost its amortized-stride cancellation poll "
                "(`(i & MASKu) == 0 && ...stop_requested()`)"))

    # A file opening the "delta-probe" span (the standing-query re-probe run
    # after every mutation batch) must poll stop_requested() inside its
    # DeltaProbe* implementation: a cancelled subscription has to stop
    # mid-burst, not after the whole delta sweep has been emitted. The span
    # name is a string literal, so it is searched in the raw text.
    literal_pos = raw.find('"delta-probe"')
    if literal_pos != -1:
        probe_polls = False
        probe_bodies = 0
        for match in DELTA_PROBE_FN_RE.finditer(stripped):
            brace = stripped.find("{", match.start())
            start, end = body_span(stripped, brace)
            probe_bodies += 1
            if re.search(r"\bstop_requested\s*\(", stripped[start:end]):
                probe_polls = True
        if probe_bodies == 0:
            # No named helper: require the poll near the span itself.
            window = stripped[literal_pos:literal_pos + 2500]
            probe_polls = bool(re.search(r"\bstop_requested\s*\(", window))
        if not probe_polls:
            violations.append(Violation(
                "cancellation-poll", path, line_of(raw, literal_pos),
                'opens a "delta-probe" span but the delta-probe loop never '
                "polls stop_requested(); Cancel() would only take effect "
                "after a full post-mutation delta sweep"))


# --- Rule: emit-under-lock ---------------------------------------------------

MUTEXLOCK_DECL_RE = re.compile(
    r"\b(?:const\s+)?MutexLock\s+\w+\s*[({]([^;]*?)[)}]\s*;")
EMIT_CALL_RE = re.compile(r"(?:\.|->)\s*Emit\s*\(")


def check_emit_under_lock(path, raw, stripped, violations):
    events = []
    for match in MUTEXLOCK_DECL_RE.finditer(stripped):
        events.append((match.start(), "lock", match.group(1)))
    for match in EMIT_CALL_RE.finditer(stripped):
        events.append((match.start(), "emit", None))
    for pos, char in ((m.start(), m.group()) for m in
                      re.finditer(r"[{}]", stripped)):
        events.append((pos, char, None))
    events.sort(key=lambda e: e[0])

    depth = 0
    held = []  # (decl_depth, mutex_expr, pos)
    for pos, kind, payload in events:
        if kind == "{":
            depth += 1
        elif kind == "}":
            depth -= 1
            held = [h for h in held if h[0] <= depth]
        elif kind == "lock":
            held.append((depth, payload, pos))
        elif kind == "emit" and held:
            blocking = [h for h in held if "sink_mutex" not in h[1]]
            if blocking:
                violations.append(Violation(
                    "emit-under-lock", path, line_of(stripped, pos),
                    f"Emit() called while holding MutexLock over "
                    f"'{blocking[-1][1].strip()}' (acquired line "
                    f"{line_of(stripped, blocking[-1][2])}); emitting into "
                    f"user code under an engine lock risks deadlock"))


# --- Rule: naked-lock --------------------------------------------------------

NAKED_CALL_RE = re.compile(r"(?:\.|->)\s*(?:lock|unlock|try_lock)\s*\(\s*\)")
RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|condition_variable(?:_any)?)\b")


def check_naked_lock(path, rel, stripped, violations):
    if rel == LOCK_SHIM:
        return
    for match in NAKED_CALL_RE.finditer(stripped):
        violations.append(Violation(
            "naked-lock", path, line_of(stripped, match.start()),
            f"naked '{match.group().strip()}' call; lock through the "
            f"Mutex/MutexLock shims in {LOCK_SHIM} so the thread-safety "
            f"analysis sees the acquisition"))
    for match in RAW_PRIMITIVE_RE.finditer(stripped):
        violations.append(Violation(
            "naked-lock", path, line_of(stripped, match.start()),
            f"raw {match.group()} outside {LOCK_SHIM}; use the annotated "
            f"Mutex/MutexLock/CondVar shims"))


# --- Rule: iwyu --------------------------------------------------------------

def check_iwyu(path, raw, stripped, violations):
    includes = set(re.findall(r'^\s*#\s*include\s*([<"][^>"]+[>"])', raw,
                              re.MULTILINE))
    angle_includes = {inc for inc in includes if inc.startswith("<")}
    for symbol_re, header in IWYU_MAP:
        match = re.search(symbol_re, stripped)
        if match and header not in angle_includes:
            violations.append(Violation(
                "iwyu", path, line_of(stripped, match.start()),
                f"uses '{match.group()}' but does not directly include "
                f"{header}"))


# --- Driver ------------------------------------------------------------------

def repo_files(patterns):
    files = []
    for pattern in patterns:
        files.extend(sorted(glob.glob(os.path.join(REPO_ROOT, pattern))))
    return files


def lint_file(path, rules=None):
    with open(path, encoding="utf-8") as handle:
        raw = handle.read()
    stripped = strip_comments_and_strings(raw)
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    violations = []

    def want(rule):
        return rules is None or rule in rules

    in_kernel_layer = rel.startswith(("src/core/", "src/join/", "src/engine/"))
    if want("cancellation-poll") and (
            (rel.endswith(".cc") and in_kernel_layer)
            or rel in STRIDE_POLL_REQUIRED):
        check_cancellation(path, rel, raw, stripped, violations)
    if want("emit-under-lock") and rel.endswith(".cc") and rel.startswith(
            ("src/engine/", "src/obs/")):
        check_emit_under_lock(path, raw, stripped, violations)
    if want("naked-lock") and rel.startswith("src/"):
        check_naked_lock(path, rel, stripped, violations)
    if want("iwyu") and any(
            fnmatch.fnmatch(rel, pattern)
            for pattern in IWYU_HEADER_GLOBS):
        check_iwyu(path, raw, stripped, violations)
    return violations


def lint_tree():
    files = repo_files(("src/**/*.cc", "src/**/*.h"))
    violations = []
    for path in files:
        violations.extend(lint_file(path))
    return violations


# --- Self-test ---------------------------------------------------------------

EXPECT_RE = re.compile(r"//\s*EXPECT-(VIOLATION|CLEAN)(?::\s*(\S+))?")


def run_self_test():
    """Fixtures declare expectations in their first line:
       // EXPECT-VIOLATION: <rule>   -> that rule (and only rules of that
                                        name) must flag the file
       // EXPECT-CLEAN               -> no rule may flag the file
    Fixture paths mirror the real tree under tools/lint_fixtures/ so the
    path-scoped rules apply to them."""
    fixtures = sorted(
        glob.glob(os.path.join(FIXTURE_DIR, "**", "*.cc"), recursive=True) +
        glob.glob(os.path.join(FIXTURE_DIR, "**", "*.h"), recursive=True))
    if not fixtures:
        print(f"lint_invariants --self-test: no fixtures in {FIXTURE_DIR}")
        return 1
    failures = 0
    for path in fixtures:
        with open(path, encoding="utf-8") as handle:
            first = handle.readline()
        match = EXPECT_RE.search(first)
        if not match:
            print(f"SELF-TEST FAIL {path}: first line lacks an "
                  f"EXPECT-VIOLATION/EXPECT-CLEAN marker")
            failures += 1
            continue
        expectation, rule = match.group(1), match.group(2)
        violations = lint_fixture(path)
        names = {v.rule for v in violations}
        fixture_ok = True
        if expectation == "CLEAN" and violations:
            print(f"SELF-TEST FAIL {path}: expected clean, got:")
            for violation in violations:
                print(f"  {violation}")
            fixture_ok = False
        elif expectation == "VIOLATION":
            if not violations:
                print(f"SELF-TEST FAIL {path}: expected a '{rule}' "
                      f"violation, got none")
                fixture_ok = False
            elif rule and names != {rule}:
                print(f"SELF-TEST FAIL {path}: expected only '{rule}', "
                      f"got {sorted(names)}:")
                for violation in violations:
                    print(f"  {violation}")
                fixture_ok = False
        if not fixture_ok:
            failures += 1
        print(f"self-test {os.path.relpath(path, FIXTURE_DIR)}: "
              f"{'ok' if fixture_ok else 'FAIL'}")
    if failures:
        print(f"lint_invariants --self-test: {failures} failure(s)")
        return 1
    print(f"lint_invariants --self-test: {len(fixtures)} fixtures ok")
    return 0


def lint_fixture(path):
    """Lints a fixture as if it lived at its mirrored path under src/."""
    with open(path, encoding="utf-8") as handle:
        raw = handle.read()
    stripped = strip_comments_and_strings(raw)
    rel = os.path.relpath(path, FIXTURE_DIR).replace(os.sep, "/")
    violations = []
    if (rel.endswith(".cc") and rel.startswith(
            ("src/core/", "src/join/", "src/engine/"))) or (
            rel in STRIDE_POLL_REQUIRED):
        check_cancellation(path, rel, raw, stripped, violations)
    if rel.endswith(".cc") and rel.startswith(("src/engine/", "src/obs/")):
        check_emit_under_lock(path, raw, stripped, violations)
    if rel.startswith("src/"):
        check_naked_lock(path, rel, stripped, violations)
    if any(fnmatch.fnmatch(rel, pattern)
           for pattern in IWYU_HEADER_GLOBS):
        check_iwyu(path, raw, stripped, violations)
    return violations


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (default: whole tree)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite instead of linting")
    parser.add_argument("--rule", action="append", dest="rules",
                        help="restrict to the named rule (repeatable)")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    if args.files:
        violations = []
        for path in args.files:
            violations.extend(lint_file(os.path.abspath(path), args.rules))
    else:
        violations = lint_tree()
        if args.rules:
            violations = [v for v in violations if v.rule in args.rules]

    for violation in violations:
        print(violation)
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
