#!/usr/bin/env python3
"""Unit tests for the bench tooling (bench_to_json.py, compare_bench.py).

These two scripts are the regression gate guarding every performance claim
in the repo: bench_to_json folds raw Google Benchmark output into the
touch-bench-v1 schema, and compare_bench decides whether a PR's numbers
regressed past the checked-in baseline. Run via ctest (bench_tools_test)
or directly:

    python3 -m unittest discover -s tools -p test_bench_tools.py
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest
from unittest import mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_to_json  # noqa: E402
import compare_bench  # noqa: E402


def _write_json(directory, name, doc):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path


def _gbench_doc(rows, context=None):
    doc = {"benchmarks": rows}
    if context is not None:
        doc["context"] = context
    return doc


def _touch_doc(benchmarks):
    return {
        "schema": "touch-bench-v1",
        "context": {"host": "test"},
        "benchmarks": {
            name: {"real_time_ms": ms, "cpu_time_ms": ms}
            for name, ms in benchmarks.items()
        },
    }


class BenchToJsonTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.dir = self._tmp.name

    def convert(self, *docs):
        paths = [_write_json(self.dir, f"in{i}.json", d)
                 for i, d in enumerate(docs)]
        return bench_to_json.convert(paths)

    def test_repetitions_fold_to_minimum(self):
        doc = self.convert(_gbench_doc([
            {"name": "k/collect", "run_type": "iteration",
             "real_time": 5.0, "cpu_time": 5.0, "time_unit": "ms"},
            {"name": "k/collect", "run_type": "iteration",
             "real_time": 3.0, "cpu_time": 3.5, "time_unit": "ms"},
            {"name": "k/collect", "run_type": "iteration",
             "real_time": 4.0, "cpu_time": 4.0, "time_unit": "ms"},
        ]))
        # The fastest repetition wins, and real/cpu stay paired from that
        # same sample (no cross-repetition min mixing).
        self.assertEqual(doc["benchmarks"]["k/collect"],
                         {"real_time_ms": 3.0, "cpu_time_ms": 3.5})

    def test_aggregate_rows_are_skipped(self):
        doc = self.convert(_gbench_doc([
            {"name": "k/sweep", "run_type": "iteration",
             "real_time": 2.0, "cpu_time": 2.0, "time_unit": "ms"},
            {"name": "k/sweep_mean", "run_type": "aggregate",
             "real_time": 99.0, "cpu_time": 99.0, "time_unit": "ms"},
            {"name": "k/sweep_stddev", "run_type": "aggregate",
             "real_time": 99.0, "cpu_time": 99.0, "time_unit": "ms"},
        ]))
        self.assertEqual(sorted(doc["benchmarks"]), ["k/sweep"])

    def test_time_units_normalize_to_milliseconds(self):
        doc = self.convert(_gbench_doc([
            {"name": "a", "run_type": "iteration",
             "real_time": 1500000.0, "cpu_time": 1500000.0,
             "time_unit": "ns"},
            {"name": "b", "run_type": "iteration",
             "real_time": 250.0, "cpu_time": 250.0, "time_unit": "us"},
            {"name": "c", "run_type": "iteration",
             "real_time": 0.5, "cpu_time": 0.5, "time_unit": "s"},
        ]))
        self.assertEqual(doc["benchmarks"]["a"]["real_time_ms"], 1.5)
        self.assertEqual(doc["benchmarks"]["b"]["real_time_ms"], 0.25)
        self.assertEqual(doc["benchmarks"]["c"]["real_time_ms"], 500.0)

    def test_unknown_time_unit_rejected(self):
        with self.assertRaises(SystemExit):
            self.convert(_gbench_doc([
                {"name": "a", "run_type": "iteration",
                 "real_time": 1.0, "cpu_time": 1.0, "time_unit": "fortnight"},
            ]))

    def test_schema_and_context_recorded(self):
        with mock.patch.dict(os.environ, {"TOUCH_BENCH_SCALE": "0.25"}):
            doc = self.convert(_gbench_doc(
                [{"name": "a", "run_type": "iteration",
                  "real_time": 1.0, "cpu_time": 1.0, "time_unit": "ms"}],
                context={"date": "2026-08-08", "host_name": "vm",
                         "num_cpus": 8, "library_build_type": "release"}))
        self.assertEqual(doc["schema"], "touch-bench-v1")
        self.assertEqual(doc["context"]["host"], "vm")
        self.assertEqual(doc["context"]["scale"], "0.25")

    def test_multiple_inputs_merge(self):
        doc = self.convert(
            _gbench_doc([{"name": "a", "run_type": "iteration",
                          "real_time": 1.0, "cpu_time": 1.0,
                          "time_unit": "ms"}]),
            _gbench_doc([{"name": "b", "run_type": "iteration",
                          "real_time": 2.0, "cpu_time": 2.0,
                          "time_unit": "ms"},
                         # Same name across files also folds to the min.
                         {"name": "a", "run_type": "iteration",
                          "real_time": 0.5, "cpu_time": 0.5,
                          "time_unit": "ms"}]))
        self.assertEqual(doc["benchmarks"]["a"]["real_time_ms"], 0.5)
        self.assertEqual(doc["benchmarks"]["b"]["real_time_ms"], 2.0)


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.dir = self._tmp.name

    def run_compare(self, baseline, current, *extra_args):
        base_path = _write_json(self.dir, "baseline.json", baseline)
        cur_path = _write_json(self.dir, "current.json", current)
        argv = ["compare_bench.py", base_path, cur_path, *extra_args]
        out = io.StringIO()
        with mock.patch.object(sys, "argv", argv), \
                contextlib.redirect_stdout(out):
            code = compare_bench.main()
        return code, out.getvalue()

    def test_rejects_non_touch_bench_documents(self):
        path = _write_json(self.dir, "bad.json", {"benchmarks": {}})
        with self.assertRaises(SystemExit):
            compare_bench.load(path)

    def test_gate_passes_within_threshold(self):
        code, out = self.run_compare(
            _touch_doc({"a": 10.0, "b": 10.0}),
            _touch_doc({"a": 10.0, "b": 12.0}),
            "--normalize", "none")
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_gate_fails_beyond_25_percent(self):
        code, out = self.run_compare(
            _touch_doc({"a": 10.0, "b": 10.0, "c": 10.0}),
            _touch_doc({"a": 10.0, "b": 10.0, "c": 20.0}),
            "--normalize", "none")
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("FAIL", out)

    def test_median_normalization_cancels_uniform_slowdown(self):
        # Every benchmark 2x slower (slower CI machine): median
        # normalization divides it out and the gate passes...
        baseline = _touch_doc({"a": 10.0, "b": 20.0, "c": 30.0})
        current = _touch_doc({"a": 20.0, "b": 40.0, "c": 60.0})
        code, out = self.run_compare(baseline, current)
        self.assertEqual(code, 0)
        self.assertIn("normalization: 2.000x", out)
        # ...while --normalize none flags all three.
        code, _ = self.run_compare(baseline, current, "--normalize", "none")
        self.assertEqual(code, 1)

    def test_relative_regression_survives_normalization(self):
        # Uniform 2x slowdown plus one benchmark an *additional* 2x slower:
        # normalization cancels the machine factor but not the outlier.
        code, out = self.run_compare(
            _touch_doc({"a": 10.0, "b": 10.0, "c": 10.0, "d": 10.0}),
            _touch_doc({"a": 20.0, "b": 20.0, "c": 20.0, "d": 40.0}))
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_min_ms_excludes_noisy_benchmarks_from_gate(self):
        # 0.1 ms baseline is below the 0.5 ms floor: a 10x "regression"
        # there is scheduler noise and must not gate.
        code, out = self.run_compare(
            _touch_doc({"fast": 0.1, "slow": 10.0}),
            _touch_doc({"fast": 1.0, "slow": 10.0}),
            "--normalize", "none")
        self.assertEqual(code, 0)
        self.assertIn("below min-ms", out)
        # Lowering the floor brings it back into the gate.
        code, _ = self.run_compare(
            _touch_doc({"fast": 0.1, "slow": 10.0}),
            _touch_doc({"fast": 1.0, "slow": 10.0}),
            "--normalize", "none", "--min-ms", "0.05")
        self.assertEqual(code, 1)

    def test_added_and_removed_benchmarks_never_gate(self):
        code, out = self.run_compare(
            _touch_doc({"shared": 10.0, "old": 10.0}),
            _touch_doc({"shared": 10.0, "new": 9999.0}),
            "--normalize", "none")
        self.assertEqual(code, 0)
        self.assertIn("added (no baseline, not gated): new", out)
        self.assertIn("removed from current results:   old", out)

    def test_no_shared_benchmarks_is_an_error(self):
        with self.assertRaises(SystemExit):
            self.run_compare(_touch_doc({"a": 1.0}), _touch_doc({"b": 1.0}))

    def test_max_slowdown_flag_overrides_default(self):
        baseline = _touch_doc({"a": 10.0, "b": 10.0, "c": 10.0})
        current = _touch_doc({"a": 10.0, "b": 10.0, "c": 14.0})
        code, _ = self.run_compare(baseline, current, "--normalize", "none")
        self.assertEqual(code, 1)  # 1.4x > default 1.25x
        code, _ = self.run_compare(baseline, current,
                                   "--normalize", "none",
                                   "--max-slowdown", "1.5")
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
